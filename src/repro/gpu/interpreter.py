"""Functional warp-lockstep interpreter.

Executes one warp instruction at a time: reads source operands, computes
all 32 lanes under the current SIMT active mask, resolves branches against
the reconvergence stack, and *returns* register writes instead of applying
them.  This split lets the timing model (:mod:`repro.gpu.sm`) defer the
architectural write to the writeback stage — where compression happens —
while the functional runner applies results immediately.

Deferring writes is safe because the SM scoreboard blocks RAW/WAW hazards:
no instruction can issue and read (or rewrite) a register with a pending
write, so issue-time operand values are always final.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.isa import Cmp, Imm, Instruction, Op, OpClass, Reg, SReg, op_class
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.program import Kernel
from repro.gpu.simt import SimtStack, popcount


@dataclass
class WarpContext:
    """All architectural state of one resident warp."""

    warp_id: int
    kernel: Kernel
    stack: SimtStack
    registers: np.ndarray  #: (num_registers, warp_size) uint32
    preds: np.ndarray  #: (8, warp_size) bool
    sregs: dict[SReg, np.ndarray]  #: per-lane special-register values
    params: np.ndarray  #: (num_params,) uint32
    gmem: GlobalMemory
    shared: SharedMemory
    cta_id: int = 0
    at_barrier: bool = False

    @property
    def warp_size(self) -> int:
        return self.registers.shape[1]

    @property
    def done(self) -> bool:
        self.stack.settle()
        return self.stack.done


@dataclass
class ExecResult:
    """Outcome of executing one warp instruction."""

    instr: Instruction
    pc: int
    exec_mask: int  #: lanes that actually executed (guard applied)
    base_mask: int  #: SIMT active mask before the guard
    divergent: bool  #: fewer than warp_size lanes executed (guard included)
    op_class: OpClass
    #: SIMT-stack divergence only (paper Figure 3's notion): the active
    #: mask is partial.  A uniformly-executed guarded branch is *not*
    #: divergent by this measure even though its taken subset is.
    base_divergent: bool = False
    dst: int | None = None
    values: np.ndarray | None = None  #: merged 32-lane dst values
    src_regs: tuple[int, ...] = ()
    is_barrier: bool = False
    is_exit: bool = False


_LANES = np.arange(64, dtype=np.uint64)


def _mask_array(mask: int, warp_size: int) -> np.ndarray:
    """Expand an int bitmask into a per-lane boolean array."""
    return ((np.uint64(mask) >> _LANES[:warp_size]) & np.uint64(1)).astype(bool)


def _mask_int(arr: np.ndarray) -> int:
    """Pack a per-lane boolean array into an int bitmask."""
    lanes = _LANES[: len(arr)]
    return int((arr.astype(np.uint64) << lanes).sum())


class Interpreter:
    """Stateless executor over :class:`WarpContext` objects."""

    def __init__(self, warp_size: int = 32):
        self.warp_size = warp_size

    # ------------------------------------------------------------------
    # Fetch / peek
    # ------------------------------------------------------------------
    def peek(self, ctx: WarpContext) -> tuple[Instruction, int, int] | None:
        """Next instruction, its execution mask, and PC — without effects.

        Returns ``None`` when the warp has finished.  The SM uses this for
        scoreboard checks and dummy-MOV injection before committing to
        issue.
        """
        ctx.stack.settle()
        if ctx.stack.done:
            return None
        pc = ctx.stack.pc
        instr = ctx.kernel.instructions[pc]
        base_mask = ctx.stack.active_mask
        exec_mask = self._guard_mask(ctx, instr, base_mask)
        return instr, exec_mask, pc

    def _guard_mask(
        self, ctx: WarpContext, instr: Instruction, base_mask: int
    ) -> int:
        if instr.guard is None:
            return base_mask
        bits = ctx.preds[instr.guard.index]
        if instr.guard.negated:
            bits = ~bits
        return base_mask & _mask_int(bits)

    # ------------------------------------------------------------------
    # Execute
    # ------------------------------------------------------------------
    def execute(self, ctx: WarpContext) -> ExecResult | None:
        """Execute the next instruction of ``ctx``; ``None`` when done.

        Register writes are returned in the result, not applied; all other
        architectural effects (PC, SIMT stack, predicates, memory) are
        applied immediately.
        """
        peeked = self.peek(ctx)
        if peeked is None:
            return None
        instr, exec_mask, pc = peeked
        base_mask = ctx.stack.active_mask
        result = ExecResult(
            instr=instr,
            pc=pc,
            exec_mask=exec_mask,
            base_mask=base_mask,
            divergent=popcount(exec_mask) < self.warp_size,
            base_divergent=popcount(base_mask) < self.warp_size,
            op_class=op_class(instr.op),
            src_regs=instr.source_registers(),
        )

        if instr.op is Op.BRA:
            ctx.stack.branch(
                taken_mask=exec_mask, target=instr.target, reconv=instr.reconv
            )
            return result
        if instr.op is Op.EXIT:
            ctx.stack.advance()
            ctx.stack.exit_lanes(exec_mask)
            result.is_exit = True
            return result
        if instr.op is Op.BAR:
            ctx.stack.advance()
            result.is_barrier = True
            return result
        if instr.op is Op.NOP:
            ctx.stack.advance()
            return result

        mask_arr = _mask_array(exec_mask, self.warp_size)
        if instr.op in (Op.ISETP, Op.FSETP):
            self._setp(ctx, instr, mask_arr)
            ctx.stack.advance()
            return result
        if instr.op in (Op.STG, Op.STS):
            self._store(ctx, instr, mask_arr)
            ctx.stack.advance()
            return result

        computed = self._compute(ctx, instr, mask_arr)
        dst = instr.dst.index
        merged = ctx.registers[dst].copy()
        merged[mask_arr] = computed[mask_arr]
        result.dst = dst
        result.values = merged
        ctx.stack.advance()
        return result

    def apply(self, ctx: WarpContext, result: ExecResult) -> None:
        """Apply a deferred register write (functional mode/writeback)."""
        if result.dst is not None:
            ctx.registers[result.dst] = result.values

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------
    def _read(self, ctx: WarpContext, operand) -> np.ndarray:
        if isinstance(operand, Reg):
            return ctx.registers[operand.index]
        if isinstance(operand, Imm):
            return self._broadcast(ctx, operand.u32)
        raise TypeError(f"unreadable operand {operand!r}")

    def _broadcast(self, ctx: WarpContext, value: int) -> np.ndarray:
        return np.full(self.warp_size, value & 0xFFFFFFFF, dtype=np.uint32)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def _compute(
        self, ctx: WarpContext, instr: Instruction, mask_arr: np.ndarray
    ) -> np.ndarray:
        op = instr.op
        read = lambda i: self._read(ctx, instr.srcs[i])  # noqa: E731

        if op is Op.MOV:
            return read(0).copy()
        if op is Op.S2R:
            return ctx.sregs[instr.sreg].copy()
        if op is Op.PARAM:
            return self._broadcast(ctx, int(ctx.params[instr.param_index]))
        if op is Op.SEL:
            pbits = ctx.preds[instr.pred_src.index]
            if instr.pred_src.negated:
                pbits = ~pbits
            return np.where(pbits, read(0), read(1)).astype(np.uint32)
        if op in (Op.LDG, Op.LDS):
            addrs = (read(0).astype(np.int64) + instr.offset).astype(np.uint32)
            space = ctx.gmem if op is Op.LDG else ctx.shared
            return space.load_warp(addrs, mask_arr)

        if op in _INT_BINOPS:
            return _INT_BINOPS[op](read(0), read(1))
        if op in _FLOAT_BINOPS:
            a = read(0).view(np.float32)
            b = read(1).view(np.float32)
            with np.errstate(all="ignore"):
                return _FLOAT_BINOPS[op](a, b).astype(np.float32).view(np.uint32)
        if op is Op.IMAD:
            a, b, c = read(0), read(1), read(2)
            return (a.astype(np.uint64) * b + c).astype(np.uint32)
        if op is Op.FFMA:
            a = read(0).view(np.float32)
            b = read(1).view(np.float32)
            c = read(2).view(np.float32)
            with np.errstate(all="ignore"):
                return (a * b + c).astype(np.float32).view(np.uint32)
        if op is Op.NOT:
            return ~read(0)
        if op in _FLOAT_UNOPS:
            a = read(0).view(np.float32)
            with np.errstate(all="ignore"):
                return _FLOAT_UNOPS[op](a).astype(np.float32).view(np.uint32)
        if op is Op.I2F:
            return read(0).view(np.int32).astype(np.float32).view(np.uint32)
        if op is Op.F2I:
            with np.errstate(all="ignore"):
                vals = np.trunc(read(0).view(np.float32))
                vals = np.nan_to_num(vals, nan=0.0, posinf=2**31 - 1, neginf=-(2**31))
            return np.clip(vals, -(2**31), 2**31 - 1).astype(np.int32).view(np.uint32)
        raise NotImplementedError(f"no semantics for {op}")

    def _setp(
        self, ctx: WarpContext, instr: Instruction, mask_arr: np.ndarray
    ) -> None:
        a = self._read(ctx, instr.srcs[0])
        b = self._read(ctx, instr.srcs[1])
        if instr.op is Op.ISETP:
            a, b = a.view(np.int32), b.view(np.int32)
        else:
            a, b = a.view(np.float32), b.view(np.float32)
        with np.errstate(all="ignore"):
            outcome = _CMP_FNS[instr.cmp](a, b)
        pred = ctx.preds[instr.pred_dst.index]
        pred[mask_arr] = outcome[mask_arr]

    def _store(
        self, ctx: WarpContext, instr: Instruction, mask_arr: np.ndarray
    ) -> None:
        addrs = (
            self._read(ctx, instr.srcs[0]).astype(np.int64) + instr.offset
        ).astype(np.uint32)
        values = self._read(ctx, instr.srcs[1])
        space = ctx.gmem if instr.op is Op.STG else ctx.shared
        space.store_warp(addrs, values, mask_arr)


def _shift_amount(b: np.ndarray) -> np.ndarray:
    return (b & 31).astype(np.uint32)


_INT_BINOPS = {
    Op.IADD: lambda a, b: a + b,
    Op.ISUB: lambda a, b: a - b,
    Op.IMUL: lambda a, b: (a.astype(np.uint64) * b).astype(np.uint32),
    Op.IMIN: lambda a, b: np.minimum(a.view(np.int32), b.view(np.int32)).view(
        np.uint32
    ),
    Op.IMAX: lambda a, b: np.maximum(a.view(np.int32), b.view(np.int32)).view(
        np.uint32
    ),
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << _shift_amount(b),
    Op.SHR: lambda a, b: a >> _shift_amount(b),
    Op.SAR: lambda a, b: (a.view(np.int32) >> _shift_amount(b).view(np.int32)).view(
        np.uint32
    ),
}

_FLOAT_BINOPS = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: np.minimum,
    Op.FMAX: np.maximum,
    Op.FDIV: lambda a, b: a / b,
}

_FLOAT_UNOPS = {
    Op.FABS: np.abs,
    Op.FNEG: lambda a: -a,
    Op.FRCP: lambda a: 1.0 / a,
    Op.FSQRT: np.sqrt,
    Op.FEXP: np.exp,
    Op.FLOG: np.log,
    Op.FSIN: np.sin,
    Op.FCOS: np.cos,
}

_CMP_FNS = {
    Cmp.EQ: lambda a, b: a == b,
    Cmp.NE: lambda a, b: a != b,
    Cmp.LT: lambda a, b: a < b,
    Cmp.LE: lambda a, b: a <= b,
    Cmp.GT: lambda a, b: a > b,
    Cmp.GE: lambda a, b: a >= b,
}


def make_warp_context(
    kernel: Kernel,
    warp_id: int,
    cta_id: int,
    cta_dim: tuple[int, int],
    grid_dim: tuple[int, int],
    warp_in_cta: int,
    params: np.ndarray,
    gmem: GlobalMemory,
    shared: SharedMemory,
    warp_size: int = 32,
) -> WarpContext:
    """Create the architectural state for one warp of a CTA.

    ``cta_dim``/``grid_dim`` are (x, y) shapes; threads are linearised
    x-major within the CTA, 32 consecutive threads per warp.  Lanes beyond
    the CTA's thread count start exited.
    """
    ctas_x, _ = grid_dim
    cta_threads = cta_dim[0] * cta_dim[1]
    lane = np.arange(warp_size)
    linear_tid = warp_in_cta * warp_size + lane
    valid = linear_tid < cta_threads
    tid_x = (linear_tid % cta_dim[0]).astype(np.uint32)
    tid_y = (linear_tid // cta_dim[0]).astype(np.uint32)
    sregs = {
        SReg.TID_X: tid_x,
        SReg.TID_Y: tid_y,
        SReg.CTAID_X: np.full(warp_size, cta_id % ctas_x, dtype=np.uint32),
        SReg.CTAID_Y: np.full(warp_size, cta_id // ctas_x, dtype=np.uint32),
        SReg.NTID_X: np.full(warp_size, cta_dim[0], dtype=np.uint32),
        SReg.NTID_Y: np.full(warp_size, cta_dim[1], dtype=np.uint32),
        SReg.NCTAID_X: np.full(warp_size, grid_dim[0], dtype=np.uint32),
        SReg.NCTAID_Y: np.full(warp_size, grid_dim[1], dtype=np.uint32),
        SReg.LANEID: lane.astype(np.uint32),
    }
    initial_mask = _mask_int(valid)
    if initial_mask == 0:
        raise ValueError("warp has no valid threads")
    return WarpContext(
        warp_id=warp_id,
        kernel=kernel,
        stack=SimtStack(warp_size, start_pc=0, mask=initial_mask),
        registers=np.zeros((kernel.num_registers, warp_size), dtype=np.uint32),
        preds=np.zeros((8, warp_size), dtype=bool),
        sregs=sregs,
        params=np.asarray(params, dtype=np.uint32),
        gmem=gmem,
        shared=shared,
        cta_id=cta_id,
    )

"""Cycle-level SIMT GPU simulator substrate.

This package is the reproduction's stand-in for GPGPU-Sim: a from-scratch
GPU model detailed exactly where the paper's evaluation needs detail —
warp scheduling, SIMT divergence, the banked register file with its bank
arbiter and operand collectors, and the added compression/decompression
pipeline stages — and deliberately simple elsewhere (fixed-latency memory,
unlimited ALUs).

Layering (bottom to top):

* :mod:`repro.gpu.config` — microarchitectural parameters (paper Table 2).
* :mod:`repro.gpu.isa`, :mod:`repro.gpu.program`, :mod:`repro.gpu.builder`
  — the PTX-like instruction set, kernel container, and the structured
  kernel-builder DSL benchmarks are written in.
* :mod:`repro.gpu.simt`, :mod:`repro.gpu.interpreter`,
  :mod:`repro.gpu.memory` — functional warp-lockstep execution with an
  immediate-post-dominator reconvergence stack.
* :mod:`repro.gpu.regfile`, :mod:`repro.gpu.arbiter`,
  :mod:`repro.gpu.collector`, :mod:`repro.gpu.scoreboard`,
  :mod:`repro.gpu.scheduler` — the register-file pipeline components.
* :mod:`repro.gpu.sm`, :mod:`repro.gpu.gpu`, :mod:`repro.gpu.launch` —
  the SM cycle loop and multi-SM kernel launch.
"""

from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU, SimulationResult
from repro.gpu.launch import LaunchSpec, run_kernel

__all__ = ["GPU", "GPUConfig", "LaunchSpec", "SimulationResult", "run_kernel"]

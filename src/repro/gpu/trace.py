"""Register-value trace capture and trace-driven replay.

The characterisation half of the paper (Figures 2, 3, 5, 8) depends only
on the *sequence of register writes* a kernel produces — not on timing.
This module lets that sequence be captured once and replayed through any
number of compression policies or codecs, which makes large design-space
sweeps (e.g. evaluating a new encoding) orders of magnitude cheaper than
re-running kernels.

A trace is a flat record of write events::

    (warp_id, register, values[32], divergent)

plus the instruction-phase counters the divergence figures need.  Traces
serialise to ``.npz`` so they can be collected once and analysed in
separate processes or shared as artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.stats import RunStats, ValueStats
from repro.core.codec import CompressionMode, choose_mode
from repro.core.policy import CompressionPolicy, make_policy
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel


@dataclass
class RegisterTrace:
    """A captured stream of warp-register writes."""

    kernel_name: str
    warp_size: int = 32
    warp_ids: list[int] = field(default_factory=list)
    registers: list[int] = field(default_factory=list)
    divergent: list[bool] = field(default_factory=list)
    values: list[np.ndarray] = field(default_factory=list)
    instructions: int = 0
    divergent_instructions: int = 0
    num_registers: int = 0

    def record(
        self, warp_id: int, register: int, values: np.ndarray, divergent: bool
    ) -> None:
        self.warp_ids.append(warp_id)
        self.registers.append(register)
        self.divergent.append(divergent)
        self.values.append(np.asarray(values, dtype=np.uint32).copy())
        # Keep the allocation bound consistent with the recorded writes:
        # hand-built traces (tests, external producers) never set
        # ``num_registers`` up front the way :func:`capture_trace` does,
        # and replay's occupancy denominator silently degenerated to zero
        # without this.
        if register >= self.num_registers:
            self.num_registers = register + 1

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the trace as a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            kernel_name=np.array(self.kernel_name),
            warp_size=np.array(self.warp_size),
            warp_ids=np.asarray(self.warp_ids, dtype=np.int64),
            registers=np.asarray(self.registers, dtype=np.int64),
            divergent=np.asarray(self.divergent, dtype=bool),
            values=np.stack(self.values)
            if self.values
            else np.zeros((0, self.warp_size), dtype=np.uint32),
            instructions=np.array(self.instructions),
            divergent_instructions=np.array(self.divergent_instructions),
            num_registers=np.array(self.num_registers),
        )

    @classmethod
    def load(cls, path: str) -> "RegisterTrace":
        """Read a trace previously written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            trace = cls(
                kernel_name=str(data["kernel_name"]),
                warp_size=int(data["warp_size"]),
            )
            trace.warp_ids = data["warp_ids"].tolist()
            trace.registers = data["registers"].tolist()
            trace.divergent = data["divergent"].tolist()
            trace.values = list(data["values"])
            trace.instructions = int(data["instructions"])
            trace.divergent_instructions = int(data["divergent_instructions"])
            trace.num_registers = int(data["num_registers"])
        return trace


def capture_trace(
    kernel: Kernel,
    grid_dim: tuple[int, int],
    cta_dim: tuple[int, int],
    params: list[int],
    gmem: GlobalMemory,
) -> RegisterTrace:
    """Run a kernel functionally and capture its register-write trace."""
    from repro.gpu.functional import FunctionalRunner

    trace = RegisterTrace(kernel_name=kernel.name)
    trace.num_registers = kernel.num_registers
    runner = FunctionalRunner(policy="baseline")

    original = runner._run_warp

    def tapped(ctx, warp_modes, allocated, compressed, stats, steps):
        interp = runner.interpreter
        original_execute = interp.execute

        def tapping_execute(context):
            result = original_execute(context)
            if result is not None:
                if result.dst is not None:
                    trace.record(
                        context.warp_id,
                        result.dst,
                        result.values,
                        result.divergent,
                    )
                trace.instructions += 1
                if result.base_divergent:
                    trace.divergent_instructions += 1
            return result

        interp.execute = tapping_execute
        try:
            return original(ctx, warp_modes, allocated, compressed, stats, steps)
        finally:
            interp.execute = original_execute

    runner._run_warp = tapped
    runner.run(kernel, grid_dim, cta_dim, params, gmem)
    return trace


def replay_trace(
    trace: RegisterTrace,
    policy: str | CompressionPolicy = "warped",
    collect_bdi: bool = False,
) -> RunStats:
    """Replay a captured trace through a compression policy.

    Reconstructs the same :class:`ValueStats` a live run under that
    policy would produce — including dummy-MOV and compressed-occupancy
    bookkeeping — without executing any instructions.
    """
    policy = make_policy(policy) if isinstance(policy, str) else policy
    stats = ValueStats(collect_bdi=collect_bdi)
    stats.instructions = trace.instructions
    stats.divergent_instructions = trace.divergent_instructions

    modes: dict[tuple[int, int], CompressionMode] = {}
    compressed = 0
    allocated = (
        (max(trace.warp_ids) + 1) * trace.num_registers
        if trace.warp_ids
        else 0
    )
    for warp_id, reg, values, divergent in zip(
        trace.warp_ids, trace.registers, trace.values, trace.divergent
    ):
        key = (warp_id, reg)
        old = modes.get(key, CompressionMode.UNCOMPRESSED)
        if (
            policy.requires_mov_on_divergent_write
            and divergent
            and old.is_compressed
        ):
            stats.record_mov()
            compressed -= 1
            old = CompressionMode.UNCOMPRESSED
        decision = policy.decide(values, divergent)
        modes[key] = decision.mode
        compressed += int(decision.mode.is_compressed) - int(old.is_compressed)
        stats.record_occupancy(
            compressed / allocated if allocated else 0.0, divergent
        )
        stats.record_write(
            values,
            divergent,
            achievable_mode=choose_mode(values),
            stored_banks=decision.banks,
            stored_mode=decision.mode,
        )
    return RunStats(
        benchmark=trace.kernel_name, policy=policy.name, value=stats
    )

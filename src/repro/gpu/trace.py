"""Register-value trace capture and trace-driven replay.

The characterisation half of the paper (Figures 2, 3, 5, 8) depends only
on the *sequence of register writes* a kernel produces — not on timing.
This module lets that sequence be captured once and replayed through any
number of compression policies or codecs, which makes large design-space
sweeps (e.g. evaluating a new encoding) orders of magnitude cheaper than
re-running kernels.

A trace is a flat record of write events::

    (warp_id, register, values[32], divergent)

stored *columnar*: the lane snapshots live in one ``(n, warp_size)``
``uint32`` matrix (one array row per write, matching the interpreter's
lane-batched representation) and the per-event metadata in parallel 1-D
arrays.  Replay is whole-trace array arithmetic — policy decisions,
dummy-MOV bookkeeping and occupancy integration all happen as batch
operations over the event axis, with no per-event Python loop.  Traces
serialise to ``.npz`` so they can be collected once and analysed in
separate processes or shared as artifacts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import RunStats, ValueStats
from repro.core.codec import choose_mode_ids
from repro.core.policy import CompressionPolicy, make_policy
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel

_INITIAL_CAPACITY = 1024


class RegisterTrace:
    """A captured stream of warp-register writes (columnar storage)."""

    def __init__(self, kernel_name: str, warp_size: int = 32):
        self.kernel_name = kernel_name
        self.warp_size = warp_size
        self.instructions = 0
        self.divergent_instructions = 0
        self.num_registers = 0
        self._count = 0
        self._warp_ids = np.zeros(0, dtype=np.int64)
        self._registers = np.zeros(0, dtype=np.int64)
        self._divergent = np.zeros(0, dtype=bool)
        self._values = np.zeros((0, warp_size), dtype=np.uint32)

    # ------------------------------------------------------------------
    # Columnar views (truncated to the recorded row count)
    # ------------------------------------------------------------------
    @property
    def warp_ids(self) -> np.ndarray:
        return self._warp_ids[: self._count]

    @property
    def registers(self) -> np.ndarray:
        return self._registers[: self._count]

    @property
    def divergent(self) -> np.ndarray:
        return self._divergent[: self._count]

    @property
    def values(self) -> np.ndarray:
        """The ``(n, warp_size)`` lane-snapshot matrix."""
        return self._values[: self._count]

    def _grow(self) -> None:
        capacity = max(_INITIAL_CAPACITY, 2 * self._warp_ids.shape[0])
        self._warp_ids = np.resize(self._warp_ids, capacity)
        self._registers = np.resize(self._registers, capacity)
        self._divergent = np.resize(self._divergent, capacity)
        values = np.zeros((capacity, self.warp_size), dtype=np.uint32)
        values[: self._count] = self._values[: self._count]
        self._values = values

    def record(
        self, warp_id: int, register: int, values: np.ndarray, divergent: bool
    ) -> None:
        i = self._count
        if i == self._warp_ids.shape[0]:
            self._grow()
        self._warp_ids[i] = warp_id
        self._registers[i] = register
        self._divergent[i] = divergent
        self._values[i] = values
        self._count = i + 1
        # Keep the allocation bound consistent with the recorded writes:
        # hand-built traces (tests, external producers) never set
        # ``num_registers`` up front the way :func:`capture_trace` does,
        # and replay's occupancy denominator silently degenerated to zero
        # without this.
        if register >= self.num_registers:
            self.num_registers = register + 1

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the trace as a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            kernel_name=np.array(self.kernel_name),
            warp_size=np.array(self.warp_size),
            warp_ids=self.warp_ids,
            registers=self.registers,
            divergent=self.divergent,
            values=self.values,
            instructions=np.array(self.instructions),
            divergent_instructions=np.array(self.divergent_instructions),
            num_registers=np.array(self.num_registers),
        )

    @classmethod
    def load(cls, path: str) -> "RegisterTrace":
        """Read a trace previously written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            trace = cls(
                kernel_name=str(data["kernel_name"]),
                warp_size=int(data["warp_size"]),
            )
            trace._warp_ids = np.asarray(data["warp_ids"], dtype=np.int64)
            trace._registers = np.asarray(data["registers"], dtype=np.int64)
            trace._divergent = np.asarray(data["divergent"], dtype=bool)
            trace._values = np.ascontiguousarray(
                data["values"], dtype=np.uint32
            )
            trace._count = int(trace._warp_ids.shape[0])
            trace.instructions = int(data["instructions"])
            trace.divergent_instructions = int(data["divergent_instructions"])
            trace.num_registers = int(data["num_registers"])
        return trace


def capture_trace(
    kernel: Kernel,
    grid_dim: tuple[int, int],
    cta_dim: tuple[int, int],
    params: list[int],
    gmem: GlobalMemory,
) -> RegisterTrace:
    """Run a kernel functionally and capture its register-write trace."""
    from repro.gpu.functional import FunctionalRunner

    trace = RegisterTrace(kernel_name=kernel.name)
    trace.num_registers = kernel.num_registers
    runner = FunctionalRunner(policy="baseline")

    original = runner._run_warp

    def tapped(ctx, warp_modes, allocated, compressed, stats, steps):
        interp = runner.interpreter
        original_execute = interp.execute

        def tapping_execute(context):
            result = original_execute(context)
            if result is not None:
                if result.dst is not None:
                    trace.record(
                        context.warp_id,
                        result.dst,
                        result.values,
                        result.divergent,
                    )
                trace.instructions += 1
                if result.base_divergent:
                    trace.divergent_instructions += 1
            return result

        interp.execute = tapping_execute
        try:
            return original(ctx, warp_modes, allocated, compressed, stats, steps)
        finally:
            interp.execute = original_execute

    runner._run_warp = tapped
    runner.run(kernel, grid_dim, cta_dim, params, gmem)
    return trace


def _previous_occurrence(slots: np.ndarray) -> np.ndarray:
    """Index of the previous event touching the same slot (-1 if none)."""
    n = slots.shape[0]
    order = np.arange(n, dtype=np.int64)
    by_slot = np.lexsort((order, slots))
    same = slots[by_slot][1:] == slots[by_slot][:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[by_slot[1:][same]] = by_slot[:-1][same]
    return prev


def replay_trace(
    trace: RegisterTrace,
    policy: str | CompressionPolicy = "warped",
    collect_bdi: bool = False,
) -> RunStats:
    """Replay a captured trace through a compression policy.

    Reconstructs the same :class:`ValueStats` a live run under that
    policy would produce — including dummy-MOV and compressed-occupancy
    bookkeeping — without executing any instructions.  The whole trace
    is processed as array arithmetic: policy decisions come from
    :meth:`~repro.core.policy.CompressionPolicy.decide_batch`, the
    per-slot previous-mode lookup from a lexsort, and the running
    compressed-register count from a cumulative sum.
    """
    policy = make_policy(policy) if isinstance(policy, str) else policy
    stats = ValueStats(collect_bdi=collect_bdi)
    stats.instructions = trace.instructions
    stats.divergent_instructions = trace.divergent_instructions

    n = len(trace)
    if n == 0:
        return RunStats(
            benchmark=trace.kernel_name, policy=policy.name, value=stats
        )

    warp_ids = trace.warp_ids
    registers = trace.registers
    divergent = trace.divergent
    matrix = trace.values
    allocated = (int(warp_ids.max()) + 1) * trace.num_registers

    # Policy decisions depend only on the written image and the
    # divergence flag, never on prior storage state, so the whole trace
    # can be decided in one batch call.
    mode_ids, banks = policy.decide_batch(matrix, divergent)
    compressed_now = mode_ids != np.uint8(3)

    # Storage state *before* each event = the decision of the previous
    # write to the same (warp, register) slot.
    stride = max(trace.num_registers, int(registers.max()) + 1)
    prev = _previous_occurrence(warp_ids * stride + registers)
    has_prev = prev >= 0
    old_compressed = np.zeros(n, dtype=bool)
    old_compressed[has_prev] = compressed_now[prev[has_prev]]

    # A dummy decompressing MOV fires on a divergent write to a
    # compressed destination.  It only affects the MOV count: the
    # compressed-count delta of the event is new-compressed minus
    # old-compressed whether or not the MOV fired (the MOV's -1 and the
    # subsequent uncompressed baseline cancel).
    if policy.requires_mov_on_divergent_write:
        stats.record_movs(int((divergent & old_compressed).sum()))

    delta = compressed_now.astype(np.int64) - old_compressed.astype(np.int64)
    running = np.cumsum(delta)
    fractions = (
        running / allocated
        if allocated
        else np.zeros(n, dtype=np.float64)
    )
    stats.record_occupancy_batch(fractions, divergent)
    stats.record_writes_batch(
        matrix,
        divergent,
        achievable_mode_ids=choose_mode_ids(matrix),
        stored_banks=banks,
        stored_mode_ids=mode_ids,
    )
    return RunStats(
        benchmark=trace.kernel_name, policy=policy.name, value=stats
    )

"""Top-level GPU: SM array, CTA dispatch, and run results."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import RunStats, TimingStats, ValueStats
from repro.core.policy import CompressionPolicy, make_policy
from repro.gpu.config import GPUConfig
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.gpu.sm import SMCore
from repro.obs.tracer import EventTracer
from repro.power.energy import EnergyBreakdown, EnergyModel
from repro.power.params import EnergyParams


@dataclass(frozen=True)
class SimulationResult:
    """Aggregated outcome of one kernel launch (immutable record)."""

    stats: RunStats
    cycles: int

    @property
    def energy(self) -> EnergyBreakdown | None:
        return self.stats.energy_breakdown


class GPU:
    """A multi-SM GPU running one kernel at a time.

    CTAs are dispatched greedily: each SM is filled to its occupancy
    limit, and whenever a CTA retires the next pending one launches on
    that SM — the same throughput-oriented dispatch real GPUs use.
    """

    def __init__(
        self,
        config: GPUConfig | None = None,
        policy: str | CompressionPolicy = "warped",
        energy_params: EnergyParams | None = None,
        collect_bdi: bool = False,
        max_cycles: int = 20_000_000,
        tracer: EventTracer | None = None,
    ):
        self.config = config or GPUConfig()
        self.energy_params = energy_params or EnergyParams(
            clock_ghz=self.config.clock_ghz
        )
        self.collect_bdi = collect_bdi
        self.max_cycles = max_cycles
        self.tracer = tracer
        self._policy_spec = policy
        #: SMs of the most recent :meth:`run` — lets the verification
        #: layer inspect per-SM checker counters after a launch.
        self.last_sms: list[SMCore] = []

    def _make_policy(self) -> CompressionPolicy:
        if isinstance(self._policy_spec, CompressionPolicy):
            return self._policy_spec
        return make_policy(self._policy_spec)

    def run(
        self,
        kernel: Kernel,
        grid_dim: tuple[int, int],
        cta_dim: tuple[int, int],
        params: list[int] | np.ndarray,
        gmem: GlobalMemory,
    ) -> SimulationResult:
        """Simulate one kernel launch to completion."""
        num_ctas = grid_dim[0] * grid_dim[1]
        if num_ctas <= 0:
            raise ValueError(f"empty grid {grid_dim}")
        params = np.asarray(
            [int(p) & 0xFFFFFFFF for p in params], dtype=np.uint32
        )

        sms = []
        for _ in range(self.config.num_sms):
            policy = self._make_policy()
            energy = EnergyModel(
                self.energy_params,
                self.config.num_banks,
                num_compressors=self.config.num_compressors
                if policy.enabled
                else 0,
                num_decompressors=self.config.num_decompressors
                if policy.enabled
                else 0,
            )
            sm = SMCore(
                self.config,
                policy,
                energy,
                self.collect_bdi,
                tracer=self.tracer,
                sm_index=len(sms),
            )
            sm.prepare_kernel(kernel, grid_dim, cta_dim, params, gmem)
            sms.append(sm)

        queue = deque(range(num_ctas))
        for sm in sms:
            while queue and sm.can_accept_cta():
                sm.launch_cta(queue.popleft())

        # verify_level 2 promises exhaustive per-cycle state scans, so the
        # fast path stands down and every cycle is ticked (and checked).
        fast_path = self.config.fast_path and self.config.verify_level < 2
        # One errstate scope for the whole launch: the interpreter's float
        # handlers deliberately carry none (entering an errstate costs as
        # much as the 32-lane arithmetic it would guard), so inf/nan edge
        # cases in kernels are silenced here instead.
        with np.errstate(all="ignore"):
            if len(sms) == 1:
                self._run_one(sms[0], queue, fast_path, kernel)
            else:
                self._run_many(sms, queue, fast_path, kernel)

        self.last_sms = sms
        # Aggregate across SMs.
        value = ValueStats(collect_bdi=self.collect_bdi)
        timing = TimingStats()
        gated: list[float] | None = None
        timeline = None
        for sm in sms:
            sm.finalize()
            value.merge(sm.value_stats)
            timing.merge(sm.timing)
            if sm.timeline is not None:
                if timeline is None:
                    timeline = sm.timeline
                else:
                    timeline.merge(sm.timeline)
            fractions = sm.gated_fractions()
            if fractions is not None:
                if gated is None:
                    gated = [0.0] * len(fractions)
                gated = [g + f for g, f in zip(gated, fractions)]
        if gated is not None:
            gated = [g / len(sms) for g in gated]

        energy_model = self._merge_energy(sms)
        stats = RunStats(
            benchmark=kernel.name,
            policy=sms[0].policy.name,
            value=value,
            timing=timing,
            energy_breakdown=energy_model.breakdown(),
            energy_model=energy_model,
            gated_fractions=tuple(gated) if gated is not None else None,
            timeline=timeline,
        )
        return SimulationResult(stats=stats, cycles=timing.cycles)

    def _run_one(self, sm: SMCore, queue, fast_path: bool, kernel) -> None:
        """Single-SM simulation loop.

        Semantically identical to :meth:`_run_many` with one SM, but
        without the per-cycle busy-list rebuilds — with the default
        one-SM config this loop body runs once per ticked cycle, so its
        constant factor is the simulator's floor.
        """
        max_cycles = self.max_cycles
        cycles = 0
        while sm.busy or queue:
            cycles += 1
            if cycles > max_cycles:
                raise RuntimeError(
                    f"kernel {kernel.name!r} exceeded {max_cycles} cycles"
                )
            if sm.busy:
                sm.tick()
            if queue:
                launched = False
                while queue and sm.can_accept_cta():
                    sm.launch_cta(queue.popleft())
                    launched = True
                if launched:
                    continue
            if not fast_path or not sm.busy:
                continue
            skip = sm.wake_hint() - sm.cycle - 1
            if skip > max_cycles - cycles:
                skip = max_cycles - cycles
            if skip > 0:
                cycles += skip
                sm.skip_cycles(skip)

    def _run_many(
        self, sms: list[SMCore], queue, fast_path: bool, kernel
    ) -> None:
        """Multi-SM simulation loop (CTA queue shared across SMs)."""
        cycles = 0
        while True:
            busy = [sm for sm in sms if sm.busy]
            if not busy and not queue:
                break
            cycles += 1
            if cycles > self.max_cycles:
                raise RuntimeError(
                    f"kernel {kernel.name!r} exceeded "
                    f"{self.max_cycles} cycles"
                )
            for sm in busy:
                sm.tick()
            launched = False
            if queue:
                for sm in sms:
                    while queue and sm.can_accept_cta():
                        sm.launch_cta(queue.popleft())
                        launched = True
            if not fast_path or launched:
                continue
            # Event-driven cycle skipping: when no SM made progress this
            # cycle and no CTA launched, every busy SM is frozen until
            # its earliest pending event.  Fast-forward to the soonest
            # one; each skipped cycle would have been an exact repeat of
            # the tick above, so skip_cycles replays its per-cycle
            # accounting.
            busy = [sm for sm in busy if sm.busy]
            if not busy:
                continue
            skip = min(sm.wake_hint() - sm.cycle for sm in busy) - 1
            skip = min(skip, self.max_cycles - cycles)
            if skip > 0:
                cycles += skip
                for sm in busy:
                    sm.skip_cycles(skip)

    def _merge_energy(self, sms: list[SMCore]) -> EnergyModel:
        merged = EnergyModel(
            self.energy_params,
            self.config.num_banks * len(sms),
            num_compressors=sum(sm.energy.num_compressors for sm in sms),
            num_decompressors=sum(sm.energy.num_decompressors for sm in sms),
        )
        # Leakage needs a single time base: every SM ran for the same wall
        # clock, so use the longest SM's cycle count.
        cycles = max(sm.energy.cycles for sm in sms)
        merged.cycles = cycles
        for sm in sms:
            e = sm.energy
            merged.bank_reads += e.bank_reads
            merged.bank_writes += e.bank_writes
            merged.wire_transfers += e.wire_transfers
            merged.compressions += e.compressions
            merged.decompressions += e.decompressions
            merged.rfc_accesses += e.rfc_accesses
            # Scale gated cycles to the common time base conservatively:
            # cycles the SM did not run count as fully gated only if the
            # design gates (it had a controller).
            gated = e.gated_bank_cycles
            if e.num_compressors or e.num_decompressors:
                gated += (cycles - e.cycles) * self.config.num_banks
            merged.gated_bank_cycles += gated
        return merged

"""Banked register file model.

Geometry follows paper Table 2: 32 banks of 256 x 128-bit entries,
organised as four clusters of eight banks.  One warp register (32 x 32-bit
thread registers) occupies one entry index across the eight banks of one
cluster; warp-register *slots* are striped across clusters so consecutive
registers of a warp land in different clusters (minimising bank conflicts,
as in the Fermi-style design the paper models).

The register file stores, per slot: the functional 32-lane values, the
compression mode (mirrored in the arbiter's compression-range indicator),
and the number of physical banks currently occupied.  Compressed data
always occupies the *lowest*-index banks of the slot's cluster
(Section 6.2), so the high banks of each cluster are the ones the gating
controller can turn off — the Figure 10 effect.
"""

from __future__ import annotations

import numpy as np

from repro.core.banks import BANKS_PER_WARP_REGISTER
from repro.core.codec import CompressionMode
from repro.core.indicator import CompressionRangeIndicator
from repro.gpu.config import GPUConfig
from repro.power.gating import BankGatingController


class RegisterFile:
    """One SM's register file: values, modes, and bank occupancy."""

    def __init__(self, config: GPUConfig, gating: BankGatingController | None):
        self.config = config
        self.gating = gating
        self.num_slots = config.warp_register_slots
        self.values = np.zeros(
            (self.num_slots, config.warp_size), dtype=np.uint32
        )
        self.indicator = CompressionRangeIndicator(self.num_slots)
        # Per-slot bank counts and valid bits live in bytearrays: every
        # issue/commit probes them a handful of times, and plain-int
        # indexing is an order of magnitude cheaper than numpy scalars.
        # Bulk scans view the same buffers through np.frombuffer.
        self._banks_used = bytearray(self.num_slots)
        self._valid = bytearray(self.num_slots)
        self._allocated = np.zeros(self.num_slots, dtype=bool)
        self._num_clusters = config.num_clusters
        # Registers of one warp are laid out contiguously in slot space;
        # striping across clusters comes from slot -> cluster mapping.
        self._regs_per_warp = 0
        self.compressed_slots = 0
        self.allocated_slots = 0
        # Precomputed bank-index tuples: _bank_tuples[cluster][nbanks] is
        # the absolute banks of the first nbanks banks of that cluster.
        # banks_of() is called for every read and write; building the
        # ~36 possible tuples once beats a range+list per access.
        self._bank_tuples = tuple(
            tuple(
                tuple(
                    range(
                        c * BANKS_PER_WARP_REGISTER,
                        c * BANKS_PER_WARP_REGISTER + n,
                    )
                )
                for n in range(BANKS_PER_WARP_REGISTER + 1)
            )
            for c in range(config.num_clusters)
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def slot(self, warp_slot: int, reg: int) -> int:
        """Linear warp-register slot of register ``reg`` of a warp."""
        return warp_slot * self._regs_per_warp + reg

    def cluster(self, slot: int) -> int:
        return slot % self._num_clusters

    def entry(self, slot: int) -> int:
        return slot // self._num_clusters

    def banks_of(self, slot: int, nbanks: int) -> tuple[int, ...]:
        """Absolute bank indices of the first ``nbanks`` banks of a slot."""
        return self._bank_tuples[slot % self._num_clusters][nbanks]

    # ------------------------------------------------------------------
    # Warp allocation
    # ------------------------------------------------------------------
    def configure_kernel(self, regs_per_warp: int) -> None:
        """Set the per-warp register count for the resident kernel."""
        if regs_per_warp <= 0:
            raise ValueError("kernels must use at least one register")
        self._regs_per_warp = regs_per_warp

    @property
    def regs_per_warp(self) -> int:
        return self._regs_per_warp

    def allocate_warp(self, warp_slot: int) -> np.ndarray:
        """Reserve slots for a warp; returns the (regs, lanes) value view."""
        lo = self.slot(warp_slot, 0)
        hi = self.slot(warp_slot, self._regs_per_warp)
        if hi > self.num_slots:
            raise ValueError(
                f"warp slot {warp_slot} exceeds register file capacity"
            )
        if self._allocated[lo:hi].any():
            raise RuntimeError(f"warp slot {warp_slot} already allocated")
        self._allocated[lo:hi] = True
        self.allocated_slots += self._regs_per_warp
        self.values[lo:hi] = 0
        return self.values[lo:hi]

    def free_warp(self, warp_slot: int, cycle: int) -> None:
        """Release a completed warp's registers (enables gating)."""
        lo = self.slot(warp_slot, 0)
        hi = self.slot(warp_slot, self._regs_per_warp)
        for s in range(lo, hi):
            if self._valid[s] and self.gating is not None:
                for bank in self.banks_of(s, self._banks_used[s]):
                    self.gating.entry_freed(bank, cycle)
            if self.indicator.is_compressed(s):
                self.compressed_slots -= 1
            self._valid[s] = 0
            self._banks_used[s] = 0
            self.indicator.reset(s)
        self._allocated[lo:hi] = False
        self.allocated_slots -= self._regs_per_warp

    # ------------------------------------------------------------------
    # Access metadata
    # ------------------------------------------------------------------
    def read_banks(self, warp_slot: int, reg: int) -> tuple[int, ...]:
        """Banks that must be read to source this register.

        An unwritten register reads the full eight banks (its indicator is
        in the reset, uncompressed state).
        """
        s = self.slot(warp_slot, reg)
        if self._valid[s]:
            return self.banks_of(s, self._banks_used[s])
        return self.banks_of(s, BANKS_PER_WARP_REGISTER)

    def mode_of(self, warp_slot: int, reg: int) -> CompressionMode:
        return self.indicator.get(self.slot(warp_slot, reg))

    def read_meta(
        self, warp_slot: int, reg: int
    ) -> tuple[CompressionMode, tuple[int, ...]]:
        """``(mode, banks to read)`` of one register in a single probe.

        Fused :meth:`mode_of` + :meth:`read_banks` for the issue stage,
        which needs both for every source operand it collects.
        """
        s = warp_slot * self._regs_per_warp + reg
        nbanks = (
            self._banks_used[s] if self._valid[s] else BANKS_PER_WARP_REGISTER
        )
        return (
            self.indicator.get(s),
            self._bank_tuples[s % self._num_clusters][nbanks],
        )

    def is_compressed(self, warp_slot: int, reg: int) -> bool:
        return self.indicator.is_compressed(self.slot(warp_slot, reg))

    # ------------------------------------------------------------------
    # Write commit
    # ------------------------------------------------------------------
    def write_commit(
        self,
        warp_slot: int,
        reg: int,
        mode: CompressionMode,
        banks: int,
        cycle: int,
    ) -> tuple[int, ...]:
        """Update metadata for a committed write; returns banks written.

        The functional values are applied separately (they live in the
        ``values`` array that warp contexts view directly).  Handles the
        valid-bit bookkeeping that drives power gating: banks freed by a
        better compression are released, newly-occupied banks allocated.
        """
        s = self.slot(warp_slot, reg)
        old_banks = self._banks_used[s] if self._valid[s] else 0
        was_compressed = self.indicator.is_compressed(s)

        if self.gating is not None and old_banks != banks:
            cluster_banks = self.banks_of(s, BANKS_PER_WARP_REGISTER)
            for b in cluster_banks[old_banks:banks]:
                self.gating.entry_allocated(b, cycle)
            for b in cluster_banks[banks:old_banks]:
                self.gating.entry_freed(b, cycle)

        self._valid[s] = 1
        self._banks_used[s] = banks
        self.indicator.set(s, mode)
        if mode.is_compressed and not was_compressed:
            self.compressed_slots += 1
        elif was_compressed and not mode.is_compressed:
            self.compressed_slots -= 1
        return self.banks_of(s, banks)

    @property
    def compressed_fraction(self) -> float:
        """Share of allocated registers currently compressed (Figure 12)."""
        if self.allocated_slots == 0:
            return 0.0
        return self.compressed_slots / self.allocated_slots

    def attach_metrics(self, registry) -> None:
        """Register occupancy state into a :class:`repro.obs` registry."""
        registry.probe(
            "regfile.compressed_fraction", lambda: self.compressed_fraction
        )
        registry.probe(
            "regfile.compressed_slots", lambda: self.compressed_slots
        )
        registry.probe(
            "regfile.allocated_slots", lambda: self.allocated_slots
        )

    # ------------------------------------------------------------------
    # Verification support (repro.verify)
    # ------------------------------------------------------------------
    def bank_occupancy(self) -> np.ndarray:
        """Valid entries per physical bank, recomputed from slot state.

        Compressed data always occupies the lowest ``banks_used`` banks of
        a slot's cluster, so bank ``cluster*8 + j`` holds one valid entry
        for every valid slot of that cluster using more than ``j`` banks.
        The gating controller's incrementally-maintained valid-entry
        counters must agree with this ground truth at all times.
        """
        occupancy = np.zeros(self.config.num_banks, dtype=np.int64)
        clusters = np.arange(self.num_slots) % self.config.num_clusters
        banks = np.frombuffer(self._banks_used, dtype=np.uint8)
        valid = np.frombuffer(self._valid, dtype=np.uint8) != 0
        per_cluster = occupancy.reshape(
            self.config.num_clusters, BANKS_PER_WARP_REGISTER
        )
        for j in range(BANKS_PER_WARP_REGISTER):
            sel = valid & (banks > j)
            per_cluster[:, j] = np.bincount(
                clusters[sel], minlength=self.config.num_clusters
            )
        return occupancy

    def check_consistency(self, indicator_exact: bool = True) -> np.ndarray:
        """Full-state scan of slot metadata; returns bank occupancy.

        Raises :class:`repro.verify.invariants.InvariantViolation` when the
        incrementally-maintained metadata (valid bits, bank counts,
        indicator modes, compressed/allocated slot counters) disagrees with
        itself.  Used by the exhaustive ``verify_level=2`` checks.
        """
        from repro.verify.invariants import InvariantViolation

        modes = self.indicator.modes_array()
        banks = np.frombuffer(self._banks_used, dtype=np.uint8)
        valid = np.frombuffer(self._valid, dtype=np.uint8) != 0
        uncompressed = int(CompressionMode.UNCOMPRESSED)

        bad = valid & ~self._allocated
        if bad.any():
            raise InvariantViolation(
                f"valid slots outside any allocated warp: {np.flatnonzero(bad)[:8]}"
            )
        bad = valid & ((banks < 1) | (banks > BANKS_PER_WARP_REGISTER))
        if bad.any():
            raise InvariantViolation(
                f"valid slots with bank count out of [1, 8]: "
                f"{np.flatnonzero(bad)[:8]}"
            )
        bad = ~valid & (banks != 0)
        if bad.any():
            raise InvariantViolation(
                f"invalid slots holding banks: {np.flatnonzero(bad)[:8]}"
            )
        bad = ~valid & (modes != uncompressed)
        if bad.any():
            raise InvariantViolation(
                f"invalid slots with a compressed indicator: "
                f"{np.flatnonzero(bad)[:8]}"
            )
        if indicator_exact:
            # The 2-bit indicator fully determines the bank count, so the
            # occupancy tracked by the register file must match the bank
            # count the arbiter would derive from the indicator.
            mode_banks = np.array(
                [CompressionMode(v).banks for v in range(4)], dtype=np.int8
            )
            bad = valid & (banks != mode_banks[modes])
            if bad.any():
                s = int(np.flatnonzero(bad)[0])
                raise InvariantViolation(
                    f"slot {s}: indicator {CompressionMode(int(modes[s])).name} "
                    f"implies {int(mode_banks[modes[s]])} banks but "
                    f"{int(banks[s])} are occupied"
                )
        recount = int((valid & (modes != uncompressed)).sum())
        if recount != self.compressed_slots:
            raise InvariantViolation(
                f"compressed_slots counter {self.compressed_slots} != "
                f"recount {recount}"
            )
        recount = int(self._allocated.sum())
        if recount != self.allocated_slots:
            raise InvariantViolation(
                f"allocated_slots counter {self.allocated_slots} != "
                f"recount {recount}"
            )
        return self.bank_occupancy()

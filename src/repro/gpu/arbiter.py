"""Bank arbiter: per-cycle read/write port booking.

Each register bank has one read port and one write port (Section 2.1).
Every cycle the arbiter grants at most one read and one write per bank;
requests that lose arbitration retry the next cycle.  The arbiter also
consults the gating controller so that an access to a power-gated bank
first triggers (and waits out) the bank wake-up.

Grant-time is when the energy model charges bank access energy, so the
arbiter reports every successful grant to the supplied callbacks.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.power.gating import BankGatingController, BankState

_ON = BankState.ON


class BankArbiter:
    """Cycle-scoped port allocator over ``num_banks`` banks."""

    def __init__(
        self,
        num_banks: int,
        gating: BankGatingController | None = None,
    ):
        self.num_banks = num_banks
        self.gating = gating
        self._read_busy = [False] * num_banks
        self._write_busy = [False] * num_banks
        self._cycle = -1
        #: Lifetime grant totals; the invariant layer cross-checks these
        #: against the energy model's bank access event counts.
        self.read_grants = 0
        self.write_grants = 0
        #: Grants issued in the current cycle (reset by begin_cycle).
        self.reads_this_cycle = 0
        self.writes_this_cycle = 0

    @property
    def cycle(self) -> int:
        """The cycle the arbiter last began (-1 before the first)."""
        return self._cycle

    def attach_metrics(self, registry) -> None:
        """Register grant totals into a :class:`repro.obs` registry."""
        registry.probe(
            "arbiter.read_grants", lambda: self.read_grants, kind="delta"
        )
        registry.probe(
            "arbiter.write_grants", lambda: self.write_grants, kind="delta"
        )

    def begin_cycle(self, cycle: int) -> None:
        """Reset port state at the start of a cycle.

        Only ports actually claimed last cycle are cleared — grants are
        sparse relative to the bank count, and this runs every tick.
        """
        self._cycle = cycle
        if self.reads_this_cycle:
            self._read_busy = [False] * self.num_banks
        if self.writes_this_cycle:
            self._write_busy = [False] * self.num_banks
        self.reads_this_cycle = 0
        self.writes_this_cycle = 0
        if self.gating is not None:
            self.gating.settle(cycle)

    def _bank_ready(self, bank: int) -> bool:
        if self.gating is None:
            return True
        return self.gating.ready_cycle_for_access(bank, self._cycle) <= self._cycle

    def grant_reads(self, banks: Iterable[int]) -> list[int]:
        """Grant read ports for as many of ``banks`` as possible this cycle.

        Returns the granted subset; the caller keeps the remainder pending.
        Banks that are waking from a gated state are not granted until the
        wake-up completes (the wake is initiated as a side effect).
        """
        granted = []
        busy = self._read_busy
        gating = self.gating
        cycle = self._cycle
        # Bank state is probed inline for the overwhelmingly-common ON
        # case; only non-ON banks take the side-effectful wake path.
        states = None if gating is None else gating._banks
        for bank in banks:
            if not busy[bank] and (
                states is None
                or states[bank].state is _ON
                or gating.ready_cycle_for_access(bank, cycle) <= cycle
            ):
                busy[bank] = True
                granted.append(bank)
        self.read_grants += len(granted)
        self.reads_this_cycle += len(granted)
        return granted

    def grant_writes(self, banks: Iterable[int]) -> list[int]:
        """Write-port counterpart of :meth:`grant_reads`."""
        granted = []
        busy = self._write_busy
        gating = self.gating
        cycle = self._cycle
        states = None if gating is None else gating._banks
        for bank in banks:
            if not busy[bank] and (
                states is None
                or states[bank].state is _ON
                or gating.ready_cycle_for_access(bank, cycle) <= cycle
            ):
                busy[bank] = True
                granted.append(bank)
        self.write_grants += len(granted)
        self.writes_this_cycle += len(granted)
        return granted

    def busy_port_counts(self) -> tuple[int, int]:
        """(read, write) ports claimed this cycle — for invariant checks.

        Because each grant sets exactly one busy flag, these must always
        equal ``reads_this_cycle``/``writes_this_cycle``; the verify layer
        asserts that, which would catch any future code path granting a
        bank's port twice in one cycle.
        """
        return self._read_busy.count(True), self._write_busy.count(True)

"""Structured kernel-builder DSL.

Benchmark kernels are authored against this builder rather than written as
raw instruction lists: it allocates registers and predicates, provides one
method per opcode, and lowers structured control flow (``if_``/``else_``,
``while_loop``, ``for_range``) to predicated branches with correct
immediate-post-dominator reconvergence points — the information the SIMT
stack (Section 5.2's divergence machinery) needs.

Example::

    b = KernelBuilder("axpy", params=("n", "a", "x", "y"))
    tid = b.global_tid_x()
    n = b.param("n")
    with b.if_(b.isetp(Cmp.LT, tid, n)):
        addr_x = b.imad(tid, 4, b.param("x"))
        addr_y = b.imad(tid, 4, b.param("y"))
        val = b.ffma(b.ldg(addr_x), b.param("a"), b.ldg(addr_y))
        b.stg(addr_y, val)
    kernel = b.build()
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import replace
from typing import Iterator

from repro.gpu.isa import Cmp, Imm, Instruction, Op, Operand, Pred, Reg, SReg
from repro.gpu.program import Kernel


def float_bits(value: float) -> int:
    """IEEE-754 single-precision bit pattern of ``value`` as an int."""
    return struct.unpack("<I", struct.pack("<f", float(value)))[0]


def fimm(value: float) -> Imm:
    """A float immediate (stored as its 32-bit pattern)."""
    return Imm(float_bits(value))


class _LoopFrame:
    """Handle yielded by :meth:`KernelBuilder.while_loop`."""

    def __init__(self, builder: "KernelBuilder", head: str, end: str):
        self._builder = builder
        self.head_label = head
        self.end_label = end

    def break_if(self, pred: Pred) -> None:
        """Exit the loop for lanes where ``pred`` holds."""
        self._builder._emit(
            Instruction(
                Op.BRA,
                guard=pred,
                label_target=self.end_label,
                label_reconv=self.end_label,
            )
        )

    def break_unless(self, pred: Pred) -> None:
        """Exit the loop for lanes where ``pred`` does not hold."""
        self.break_if(~pred)


class KernelBuilder:
    """Builds a :class:`~repro.gpu.program.Kernel` imperatively."""

    def __init__(
        self,
        name: str,
        params: tuple[str, ...] | list[str] = (),
        shared_bytes: int = 0,
    ):
        self.name = name
        self.param_names = tuple(params)
        self.shared_bytes = shared_bytes
        self._instrs: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._next_reg = 0
        self._next_pred = 0
        self._fresh_counter = 0
        self._closed_if: list[tuple[int, str, str]] | None = None
        self._built = False

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def reg(self) -> Reg:
        """Allocate a fresh architectural register."""
        r = Reg(self._next_reg)
        self._next_reg += 1
        return r

    def _pred(self) -> Pred:
        p = Pred(self._next_pred % 8)
        self._next_pred += 1
        return p

    def _fresh(self, stem: str) -> str:
        self._fresh_counter += 1
        return f".{stem}_{self._fresh_counter}"

    def _emit(self, instr: Instruction) -> int:
        if self._built:
            raise RuntimeError("builder already finalised")
        self._instrs.append(instr)
        return len(self._instrs) - 1

    def _define(self, label: str) -> None:
        self._labels[label] = len(self._instrs)

    @staticmethod
    def _operand(value: Operand | int | float) -> Operand:
        if isinstance(value, (Reg, Imm)):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not a valid operand; use a predicate")
        if isinstance(value, int):
            return Imm(value)
        if isinstance(value, float):
            return fimm(value)
        raise TypeError(f"cannot use {value!r} as an operand")

    # ------------------------------------------------------------------
    # Arithmetic / logic
    # ------------------------------------------------------------------
    def _binary(self, op: Op, a, b, dst: Reg | None) -> Reg:
        dst = dst or self.reg()
        self._emit(
            Instruction(op, dst=dst, srcs=(self._operand(a), self._operand(b)))
        )
        return dst

    def _ternary(self, op: Op, a, b, c, dst: Reg | None) -> Reg:
        dst = dst or self.reg()
        self._emit(
            Instruction(
                op,
                dst=dst,
                srcs=(self._operand(a), self._operand(b), self._operand(c)),
            )
        )
        return dst

    def _unary(self, op: Op, a, dst: Reg | None) -> Reg:
        dst = dst or self.reg()
        self._emit(Instruction(op, dst=dst, srcs=(self._operand(a),)))
        return dst

    def iadd(self, a, b, dst=None) -> Reg:
        return self._binary(Op.IADD, a, b, dst)

    def isub(self, a, b, dst=None) -> Reg:
        return self._binary(Op.ISUB, a, b, dst)

    def imul(self, a, b, dst=None) -> Reg:
        return self._binary(Op.IMUL, a, b, dst)

    def imad(self, a, b, c, dst=None) -> Reg:
        """dst = a * b + c (the address-computation workhorse)."""
        return self._ternary(Op.IMAD, a, b, c, dst)

    def imin(self, a, b, dst=None) -> Reg:
        return self._binary(Op.IMIN, a, b, dst)

    def imax(self, a, b, dst=None) -> Reg:
        return self._binary(Op.IMAX, a, b, dst)

    def and_(self, a, b, dst=None) -> Reg:
        return self._binary(Op.AND, a, b, dst)

    def or_(self, a, b, dst=None) -> Reg:
        return self._binary(Op.OR, a, b, dst)

    def xor(self, a, b, dst=None) -> Reg:
        return self._binary(Op.XOR, a, b, dst)

    def not_(self, a, dst=None) -> Reg:
        return self._unary(Op.NOT, a, dst)

    def shl(self, a, b, dst=None) -> Reg:
        return self._binary(Op.SHL, a, b, dst)

    def shr(self, a, b, dst=None) -> Reg:
        return self._binary(Op.SHR, a, b, dst)

    def sar(self, a, b, dst=None) -> Reg:
        return self._binary(Op.SAR, a, b, dst)

    def fadd(self, a, b, dst=None) -> Reg:
        return self._binary(Op.FADD, a, b, dst)

    def fsub(self, a, b, dst=None) -> Reg:
        return self._binary(Op.FSUB, a, b, dst)

    def fmul(self, a, b, dst=None) -> Reg:
        return self._binary(Op.FMUL, a, b, dst)

    def ffma(self, a, b, c, dst=None) -> Reg:
        return self._ternary(Op.FFMA, a, b, c, dst)

    def fmin(self, a, b, dst=None) -> Reg:
        return self._binary(Op.FMIN, a, b, dst)

    def fmax(self, a, b, dst=None) -> Reg:
        return self._binary(Op.FMAX, a, b, dst)

    def fabs(self, a, dst=None) -> Reg:
        return self._unary(Op.FABS, a, dst)

    def fneg(self, a, dst=None) -> Reg:
        return self._unary(Op.FNEG, a, dst)

    def i2f(self, a, dst=None) -> Reg:
        return self._unary(Op.I2F, a, dst)

    def f2i(self, a, dst=None) -> Reg:
        return self._unary(Op.F2I, a, dst)

    def frcp(self, a, dst=None) -> Reg:
        return self._unary(Op.FRCP, a, dst)

    def fsqrt(self, a, dst=None) -> Reg:
        return self._unary(Op.FSQRT, a, dst)

    def fexp(self, a, dst=None) -> Reg:
        return self._unary(Op.FEXP, a, dst)

    def flog(self, a, dst=None) -> Reg:
        return self._unary(Op.FLOG, a, dst)

    def fdiv(self, a, b, dst=None) -> Reg:
        return self._binary(Op.FDIV, a, b, dst)

    def fsin(self, a, dst=None) -> Reg:
        return self._unary(Op.FSIN, a, dst)

    def fcos(self, a, dst=None) -> Reg:
        return self._unary(Op.FCOS, a, dst)

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def mov(self, src, dst=None, guard: Pred | None = None) -> Reg:
        dst = dst or self.reg()
        self._emit(
            Instruction(Op.MOV, dst=dst, srcs=(self._operand(src),), guard=guard)
        )
        return dst

    def sel(self, pred: Pred, a, b, dst=None) -> Reg:
        """dst = pred ? a : b, lane-wise — branch-free select."""
        dst = dst or self.reg()
        self._emit(
            Instruction(
                Op.SEL,
                dst=dst,
                srcs=(self._operand(a), self._operand(b)),
                pred_src=pred,
            )
        )
        return dst

    def s2r(self, sreg: SReg, dst=None) -> Reg:
        dst = dst or self.reg()
        self._emit(Instruction(Op.S2R, dst=dst, sreg=sreg))
        return dst

    def param(self, name: str, dst=None) -> Reg:
        """Read a kernel parameter (scalar or buffer base address)."""
        try:
            index = self.param_names.index(name)
        except ValueError:
            raise KeyError(
                f"kernel {self.name!r} has no parameter {name!r}; "
                f"declared: {self.param_names}"
            ) from None
        dst = dst or self.reg()
        self._emit(Instruction(Op.PARAM, dst=dst, param_index=index))
        return dst

    def tid_x(self) -> Reg:
        return self.s2r(SReg.TID_X)

    def ctaid_x(self) -> Reg:
        return self.s2r(SReg.CTAID_X)

    def ntid_x(self) -> Reg:
        return self.s2r(SReg.NTID_X)

    def global_tid_x(self) -> Reg:
        """ctaid.x * ntid.x + tid.x — the canonical global thread index."""
        return self.imad(self.ctaid_x(), self.ntid_x(), self.tid_x())

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def isetp(self, cmp: Cmp, a, b, dst: Pred | None = None) -> Pred:
        dst = dst or self._pred()
        self._emit(
            Instruction(
                Op.ISETP,
                pred_dst=dst,
                srcs=(self._operand(a), self._operand(b)),
                cmp=cmp,
            )
        )
        return dst

    def fsetp(self, cmp: Cmp, a, b, dst: Pred | None = None) -> Pred:
        dst = dst or self._pred()
        self._emit(
            Instruction(
                Op.FSETP,
                pred_dst=dst,
                srcs=(self._operand(a), self._operand(b)),
                cmp=cmp,
            )
        )
        return dst

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def ldg(self, addr: Reg, offset: int = 0, dst=None, guard=None) -> Reg:
        dst = dst or self.reg()
        self._emit(
            Instruction(Op.LDG, dst=dst, srcs=(addr,), offset=offset, guard=guard)
        )
        return dst

    def stg(self, addr: Reg, value, offset: int = 0, guard=None) -> None:
        self._emit(
            Instruction(
                Op.STG,
                srcs=(addr, self._operand(value)),
                offset=offset,
                guard=guard,
            )
        )

    def lds(self, addr: Reg, offset: int = 0, dst=None, guard=None) -> Reg:
        dst = dst or self.reg()
        self._emit(
            Instruction(Op.LDS, dst=dst, srcs=(addr,), offset=offset, guard=guard)
        )
        return dst

    def sts(self, addr: Reg, value, offset: int = 0, guard=None) -> None:
        self._emit(
            Instruction(
                Op.STS,
                srcs=(addr, self._operand(value)),
                offset=offset,
                guard=guard,
            )
        )

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def bar(self) -> None:
        """CTA-wide barrier; must be reached warp-uniformly."""
        self._emit(Instruction(Op.BAR))

    def exit_(self, guard: Pred | None = None) -> None:
        """Terminate the (guarded subset of the) warp's threads."""
        self._emit(Instruction(Op.EXIT, guard=guard))

    def nop(self) -> None:
        self._emit(Instruction(Op.NOP))

    @contextmanager
    def if_(self, pred: Pred) -> Iterator[None]:
        """Execute the body only on lanes where ``pred`` holds."""
        end = self._fresh("endif")
        bra_idx = self._emit(
            Instruction(Op.BRA, guard=~pred, label_target=end, label_reconv=end)
        )
        yield
        self._define(end)
        self._closed_if = [(bra_idx, end, end)]

    @contextmanager
    def else_(self) -> Iterator[None]:
        """Alternative body; must immediately follow an ``if_`` block."""
        if not self._closed_if:
            raise RuntimeError("else_ must immediately follow an if_ block")
        bra_idx, end, _ = self._closed_if.pop()
        if self._labels.get(end) != len(self._instrs):
            raise RuntimeError("else_ must immediately follow its if_ block")
        else_label = self._fresh("else")
        # End of the then-body: skip over the else-body to the join point.
        self._emit(
            Instruction(Op.BRA, label_target=end, label_reconv=end)
        )
        self._define(else_label)
        # Retarget the if-branch at the else-body; the join point (and the
        # reconvergence label) moves to the end of the else-body.
        self._instrs[bra_idx] = replace(
            self._instrs[bra_idx], label_target=else_label
        )
        yield
        self._define(end)

    @contextmanager
    def while_loop(self) -> Iterator[_LoopFrame]:
        """A loop; exit lanes via ``loop.break_if``/``break_unless``."""
        head = self._fresh("loop")
        end = self._fresh("endloop")
        self._define(head)
        frame = _LoopFrame(self, head, end)
        yield frame
        self._emit(Instruction(Op.BRA, label_target=head, label_reconv=end))
        self._define(end)

    @contextmanager
    def for_range(self, start, bound, step: int = 1) -> Iterator[Reg]:
        """``for i in range(start, bound, step)`` over a fresh register.

        ``bound`` may be a register or immediate; the comparison is
        ``i < bound`` for positive steps and ``i > bound`` otherwise.
        """
        if step == 0:
            raise ValueError("for_range step must be non-zero")
        i = self.mov(start)
        bound_op = self._operand(bound)
        with self.while_loop() as loop:
            cmp = Cmp.LT if step > 0 else Cmp.GT
            loop.break_unless(self.isetp(cmp, i, bound_op))
            yield i
            self.iadd(i, step, dst=i)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> Kernel:
        """Resolve labels and produce an immutable kernel."""
        if not self._instrs or self._instrs[-1].op is not Op.EXIT:
            self.exit_()
        resolved = []
        for i, instr in enumerate(self._instrs):
            if instr.op is Op.BRA:
                instr = replace(
                    instr,
                    target=self._resolve(instr.label_target, i),
                    reconv=self._resolve(instr.label_reconv, i),
                )
            resolved.append(instr)
        self._built = True
        return Kernel(
            name=self.name,
            instructions=resolved,
            num_registers=max(self._next_reg, 1),
            param_names=self.param_names,
            shared_bytes=self.shared_bytes,
            labels=dict(self._labels),
        )

    def _resolve(self, label: str | None, at: int) -> int:
        if label is None:
            raise ValueError(f"branch at {at} has no target label")
        try:
            return self._labels[label]
        except KeyError:
            raise ValueError(
                f"branch at {at} references undefined label {label!r}"
            ) from None

"""Streaming multiprocessor: the cycle-level pipeline model.

Each cycle an SM (in reverse pipeline order so stage hand-offs take one
cycle):

1. **writeback** — ops holding a compression decision contend for bank
   write ports; a fully-written op commits its value, updates the
   compression-range indicator and gating valid bits, and releases its
   scoreboard entry.
2. **compress** — completed executions that write a register pass through
   a compressor unit (2-cycle latency by default); divergent writes and
   the baseline design bypass compression.
3. **execute** — fixed-latency function units by op class.
4. **collect** — operand collectors read source banks through the bank
   arbiter (one read port per bank per cycle); compressed operands then
   take a decompressor unit (1-cycle latency by default).
5. **issue** — two warp schedulers (GTO or LRR) each pick one ready warp;
   the instruction is functionally executed immediately (its register
   write deferred to writeback) so branches resolve at issue.  A
   divergent instruction about to update a *compressed* destination
   instead injects the dummy decompressing MOV of Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.analysis.stats import TimingStats, ValueStats
from repro.core.banks import BANKS_PER_WARP_REGISTER
from repro.core.codec import CompressionMode, choose_mode
from repro.core.policy import CompressionDecision, CompressionPolicy
from repro.core.units import UnitPool
from repro.gpu.arbiter import BankArbiter
from repro.gpu.batch import (
    BATCH_STATS,
    QueuedOp,
    Region,
    compute_regions,
    evaluate_region,
)
from repro.gpu.collector import CollectorPool, OperandRead
from repro.gpu.config import GPUConfig
from repro.gpu.interpreter import (
    ExecResult,
    Interpreter,
    WarpContext,
    make_warp_context,
)
from repro.gpu.isa import Instruction, Op, OpClass
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.program import Kernel
from repro.gpu.regfile import RegisterFile
from repro.gpu.rfc import RegisterFileCache
from repro.gpu.scheduler import WarpScheduler
from repro.gpu.scoreboard import Scoreboard
from repro.obs.metrics import NULL_GAUGE, NULL_HISTOGRAM, MetricRegistry
from repro.obs.sampler import IntervalSampler
from repro.obs.tracer import COMPRESSOR_TID, DECOMPRESSOR_TID, EventTracer
from repro.power.energy import EnergyModel
from repro.power.gating import BankGatingController
from repro.verify.invariants import InvariantChecker

#: Sampling period used when tracing is requested without an explicit
#: ``GPUConfig.sample_interval`` (counter tracks need a time base).
DEFAULT_TRACE_INTERVAL = 64

#: Distinguishes "no cache entry" from a cached ``None`` (drained warp).
_PEEK_MISS = object()

#: Blocker kinds for the memoized issue-readiness verdicts.  Each kind
#: pairs with a validity token: DRAINED is permanent (an empty fetch
#: never refills), COLLECTOR is keyed on the collector pool's release
#: count, SCOREBOARD on the warp's scoreboard release epoch.


class OpState(Enum):
    COLLECT = "collect"
    EXEC = "exec"
    COMPRESS = "compress"
    WRITE = "write"


@dataclass(slots=True)
class InflightOp:
    """One instruction moving through the register-file pipeline."""

    warp_slot: int
    result: ExecResult
    reads: list[OperandRead]
    state: OpState = OpState.COLLECT
    holds_collector: bool = False
    exec_done: int = 0
    decision: CompressionDecision | None = None
    write_ready: int = 0
    pending_write_banks: list[int] = field(default_factory=list)
    is_mov: bool = False
    #: Deferred-removal flag: stages mark finished ops and the in-flight
    #: list is rebuilt once, instead of copying it every cycle.
    retired: bool = False
    # Pre-batched writeback work (cross-warp batched issue path): the
    # compression decision chosen at gather time, plus the precomputed
    # characterisation profile folded into the stats at commit.  A
    # negative ``prepared_sim_bin`` means commit takes the normal
    # per-write profile path.
    predecided: CompressionDecision | None = None
    prepared_sim_bin: int = -1
    prepared_achievable_banks: int = 0
    # Stage-boundary timestamps (cycle numbers) for the event tracer.
    issued_at: int = 0
    collect_done: int = -1


@dataclass
class _CtaState:
    cta_id: int
    warp_slots: list[int]
    shared: SharedMemory
    remaining: int


class SMCore:
    """One streaming multiprocessor."""

    def __init__(
        self,
        config: GPUConfig,
        policy: CompressionPolicy,
        energy: EnergyModel,
        collect_bdi: bool = False,
        tracer: EventTracer | None = None,
        sm_index: int = 0,
    ):
        self.config = config
        self.policy = policy
        self.energy = energy
        self.interpreter = Interpreter(config.warp_size)
        self.gating = (
            BankGatingController(
                config.num_banks,
                config.bank_wakeup_latency,
                config.bank_gate_delay,
            )
            if policy.enabled
            else None
        )
        self.regfile = RegisterFile(config, self.gating)
        self.rfc = (
            RegisterFileCache(config.rfc_entries_per_warp)
            if config.rfc_entries_per_warp > 0
            else None
        )
        self.arbiter = BankArbiter(config.num_banks, self.gating)
        self.collectors = CollectorPool(config.num_collectors)
        self.scoreboard = Scoreboard(strict=config.verify_level >= 1)
        self.checker = (
            InvariantChecker(config, policy)
            if config.verify_level >= 1
            else None
        )
        self.schedulers = [
            WarpScheduler(config.scheduler_policy)
            for _ in range(config.num_schedulers)
        ]
        self.compressors = UnitPool(
            config.num_compressors, config.compression_latency
        )
        self.decompressors = UnitPool(
            config.num_decompressors, config.decompression_latency
        )
        self.value_stats = ValueStats(collect_bdi=collect_bdi)
        self.timing = TimingStats()
        self.cycle = 0
        self._warps: dict[int, WarpContext] = {}
        self._inflight: list[InflightOp] = []
        # Live op count per pipeline state.  Each stage scans the whole
        # inflight list for ops in its state; these let tick() skip the
        # scans that would match nothing (most cycles, most stages are
        # empty).  Maintained at every state transition.
        self._n_collect = 0
        self._n_exec = 0
        self._n_compress = 0
        self._n_write = 0
        self._ctas: dict[int, _CtaState] = {}
        self._warp_cta: dict[int, int] = {}
        self._free_slots: list[int] = []
        self._next_issue: dict[int, int] = {}
        self._kernel: Kernel | None = None
        self._grid_dim = (1, 1)
        self._cta_dim = (1, 1)
        self._params: np.ndarray | None = None
        self._gmem: GlobalMemory | None = None
        self._cta_warps = 0
        self._latency = {
            OpClass.ALU: config.alu_latency,
            OpClass.SFU: config.sfu_latency,
            OpClass.GLOBAL: config.global_mem_latency,
            OpClass.SHARED: config.shared_mem_latency,
            OpClass.CONTROL: 1,
        }
        # ----- fast path (event-driven cycle skipping) -----------------
        #: Whether the last tick changed any pipeline state.  A tick with
        #: no progress proves the SM is frozen until :meth:`wake_hint`.
        self._progress = True
        #: Per-cycle stat increments measured during the last tick; a
        #: frozen SM repeats them identically every skipped cycle.
        self._idle_delta = 0
        self._stall_delta = 0
        #: warp slot → peek result: one instruction fetch per warp per
        #: *issue*, not per cycle.  A peek depends only on the warp's
        #: SIMT stack and predicate file, and both change exclusively in
        #: :meth:`Interpreter.execute` — so the entry stays valid until
        #: the warp next issues a real instruction (dummy MOVs leave the
        #: fetch state untouched).
        self._peek_cache: dict[int, tuple | None] = {}
        #: Warps whose (cached) fetch has come back empty.  Only these
        #: can retire, so the retire stage scans this set instead of all
        #: resident warps; every real peek keeps it up to date.
        self._drained: set[int] = set()
        #: Warps with a memoized issue-blocked verdict.  A blocked warp
        #: stays blocked until the event that produced its verdict is
        #: undone, so between events the scheduler pick loop skips it
        #: without re-deriving the fetch/operand/hazard chain.  Disabled
        #: whenever a tracer wants per-cycle stall causes or an RFC can
        #: change operand cacheability without a scoreboard event.
        self._blocked: set[int] = set()
        #: Subset of ``_blocked`` whose verdict is "no collector free".
        #: Those verdicts only flip when a collector is released, so they
        #: are flushed in one batch when ``collectors.releases`` moves;
        #: scoreboard verdicts are discarded eagerly at the release sites
        #: (a warp only ever waits on its own pending registers), and
        #: drained verdicts hold until the warp retires.  Entries are
        #: therefore valid by construction, and the scheduler scan skips
        #: a blocked warp with a set-membership test instead of a call.
        self._blocked_collector: set[int] = set()
        self._coll_flush_seen = 0
        self._issue_cache_enabled = tracer is None and self.rfc is None
        #: Whole-SM issue snapshot: when a full scheduler scan found every
        #: resident warp memo-blocked, (collector releases, scoreboard
        #: releases, blocked count, resident count) at that instant.  While
        #: all four still match, the issue stage is a no-op.
        self._all_blocked: tuple[int, int, int, int] | None = None
        #: Per-scheduler variant of the same idea: when one scheduler's
        #: scan found every one of its warps memo-blocked, (collector
        #: releases, scoreboard releases, scheduler generation) at that
        #: instant.  While all three match, that scheduler's pick is
        #: skipped — the partial analogue for workloads where only some
        #: schedulers idle.
        self._sched_blocked: list[tuple[int, int, int] | None] = [
            None for _ in self.schedulers
        ]
        #: Resident-warp count mirrored from the schedulers, so the issue
        #: stage's snapshot checks don't re-sum scheduler lengths per tick.
        self._resident = 0
        #: Precomputed issue-stage constants.
        self._full_mask = (1 << config.warp_size) - 1
        self._mov_candidate = (
            self.rfc is None and policy.requires_mov_on_divergent_write
        )
        # ----- cross-warp batched execution (repro.gpu.batch) ----------
        #: warp slot → deque of pre-executed :class:`QueuedOp`s replayed
        #: through the normal issue machinery.  A queued warp's peek
        #: cache entry always mirrors its queue head, so readiness
        #: checks (_can_issue) run unchanged against queued work.
        self._region_queues: dict[int, object] = {}
        #: head pc → :class:`Region` for the current kernel.
        self._regions: dict[int, Region] = {}
        #: segment end pc → cycle before which failed gathers for that
        #: segment are not retried (host-side cost control only).
        self._gather_backoff: dict[int, int] = {}
        #: Batching precomputes compression decisions at gather time,
        #: which an RFC's different decide semantics and verify level
        #: 2's exhaustive per-cycle contract both preclude.
        self._batch_gate = (
            config.batched and self.rfc is None and config.verify_level < 2
        )
        self._batch_hist = NULL_HISTOGRAM
        self._group_gauge = NULL_GAUGE
        # ----- observability (repro.obs) -------------------------------
        self.sm_index = sm_index
        self.tracer = tracer
        self.timeline = None
        self._stall_cause: dict[int, str] = {}
        self._last_issue_cycle: dict[int, int] = {}
        interval = config.sample_interval
        if interval == 0 and tracer is not None:
            interval = DEFAULT_TRACE_INTERVAL
        if interval > 0:
            self.metrics = MetricRegistry(enabled=True)
            self.sampler = IntervalSampler(self.metrics, interval)
            self._attach_metrics()
        else:
            self.metrics = None
            self.sampler = None
        if tracer is not None:
            tracer.name_process(sm_index, f"SM {sm_index}")
            tracer.name_track(sm_index, COMPRESSOR_TID, "compressors")
            tracer.name_track(sm_index, DECOMPRESSOR_TID, "decompressors")

    def _attach_metrics(self) -> None:
        """Register every component's probes into the SM's registry."""
        registry = self.metrics
        registry.probe("sm.issued", lambda: self.timing.issued, kind="delta")
        registry.probe(
            "sm.collector_stalls",
            lambda: self.timing.collector_stall_cycles,
            kind="delta",
        )
        registry.probe(
            "sm.issue_idle",
            lambda: self.timing.issue_idle_cycles,
            kind="delta",
        )
        registry.probe(
            "sm.movs", lambda: self.value_stats.movs_injected, kind="delta"
        )
        registry.probe("sm.inflight_ops", lambda: len(self._inflight))
        registry.probe("sm.resident_warps", lambda: len(self._warps))
        self._batch_hist = registry.histogram(
            "sm.batch_size", bounds=(1, 2, 4, 8, 16, 32, 48)
        )
        self._group_gauge = registry.gauge("sm.opcode_group_occupancy")
        from repro.core.memo import MEMO_CACHE

        MEMO_CACHE.attach_metrics(registry)
        self.regfile.attach_metrics(registry)
        self.arbiter.attach_metrics(registry)
        self.scoreboard.attach_metrics(registry)
        self.collectors.attach_metrics(registry)
        self.energy.attach_metrics(registry)
        if self.gating is not None:
            self.gating.attach_metrics(registry)
        for i, scheduler in enumerate(self.schedulers):
            scheduler.attach_metrics(registry, i)

    # ------------------------------------------------------------------
    # Kernel / CTA management
    # ------------------------------------------------------------------
    def prepare_kernel(
        self,
        kernel: Kernel,
        grid_dim: tuple[int, int],
        cta_dim: tuple[int, int],
        params: np.ndarray,
        gmem: GlobalMemory,
    ) -> None:
        """Configure the SM for a kernel launch."""
        self._kernel = kernel
        self._grid_dim = grid_dim
        self._cta_dim = cta_dim
        self._params = params
        self._gmem = gmem
        cta_threads = cta_dim[0] * cta_dim[1]
        self._cta_warps = -(-cta_threads // self.config.warp_size)
        self.regfile.configure_kernel(kernel.num_registers)
        max_warps = self.config.max_resident_warps(
            kernel.num_registers, self._cta_warps
        )
        if max_warps < self._cta_warps:
            raise ValueError(
                f"kernel {kernel.name!r} CTA needs {self._cta_warps} warps but "
                f"occupancy allows {max_warps}"
            )
        self._free_slots = list(range(max_warps))
        self._peek_cache.clear()
        self._drained.clear()
        self._blocked.clear()
        self._blocked_collector.clear()
        self._coll_flush_seen = self.collectors.releases
        self._all_blocked = None
        self._sched_blocked = [None for _ in self.schedulers]
        self._region_queues.clear()
        self._gather_backoff.clear()
        self._regions = compute_regions(kernel) if self._batch_gate else {}

    def can_accept_cta(self) -> bool:
        return len(self._free_slots) >= self._cta_warps

    def launch_cta(self, cta_id: int) -> None:
        """Make one CTA's warps resident."""
        if not self.can_accept_cta():
            raise RuntimeError("SM cannot accept another CTA")
        shared = SharedMemory(self._kernel.shared_bytes)
        slots = [self._free_slots.pop(0) for _ in range(self._cta_warps)]
        for i, slot in enumerate(slots):
            storage = self.regfile.allocate_warp(slot)
            ctx = make_warp_context(
                kernel=self._kernel,
                warp_id=slot,
                cta_id=cta_id,
                cta_dim=self._cta_dim,
                grid_dim=self._grid_dim,
                warp_in_cta=i,
                params=self._params,
                gmem=self._gmem,
                shared=shared,
                warp_size=self.config.warp_size,
            )
            ctx.registers = storage  # register file is the backing store
            self._warps[slot] = ctx
            self._warp_cta[slot] = cta_id
            self._next_issue[slot] = self.cycle
            self.schedulers[slot % len(self.schedulers)].add_warp(slot)
            self._resident += 1
            # Warm the fetch cache so a warp with nothing to run is in
            # _drained before the next retire scan (peek is pure, and the
            # first real fetch would happen next tick regardless).
            self._peek(slot, ctx)
            if self.tracer is not None:
                self.tracer.name_track(
                    self.sm_index, slot + 1, f"warp {slot}"
                )
                self._last_issue_cycle[slot] = self.cycle
        self._ctas[cta_id] = _CtaState(cta_id, slots, shared, len(slots))

    @property
    def busy(self) -> bool:
        return bool(self._warps) or bool(self._inflight)

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def tick(self) -> None:
        self.cycle += 1
        self._progress = False
        self.arbiter.begin_cycle(self.cycle)
        if self._inflight:
            # Stage order (writeback → compress → execute → collect) is
            # load-bearing: compress-stage compressor claims must precede
            # execute-stage claims.  Skipping an empty stage is identical
            # to scanning it — its loop body would never run.
            if self._n_write:
                self._writeback_stage()
            if self._n_compress:
                self._compress_stage()
            if self._n_exec:
                self._execute_stage()
            if self._n_collect:
                self._collect_stage()
        timing = self.timing
        idle_before = timing.issue_idle_cycles
        if self._issue_cache_enabled:
            # With the issue-blocked memo active, a repeat of this tick
            # hits the memo and increments no collector-stall counters,
            # so frozen cycles must replay a zero delta.
            self._issue_stage()
            self._stall_delta = 0
        else:
            stall_before = timing.collector_stall_cycles
            self._issue_stage()
            self._stall_delta = timing.collector_stall_cycles - stall_before
        self._idle_delta = timing.issue_idle_cycles - idle_before
        self._retire_warps()
        if self.checker is not None:
            self.checker.check_tick(self)
        self.timing.cycles = self.cycle
        if self.sampler is not None:
            row = self.sampler.tick(self.cycle)
            if row is not None and self.tracer is not None:
                self._emit_counter_tracks(row)

    def wake_hint(self) -> int:
        """Earliest future cycle at which this SM's state can change.

        Valid only right after a :meth:`tick`.  When that tick made
        progress the hint is the very next cycle and nothing may be
        skipped.  Otherwise the pipeline is provably frozen: every
        remaining event is a pending timestamp (execution latency,
        compressor output, write-ready, operand ready, issue-delay
        expiry), and the minimum of those is the first cycle a re-run of
        the stages could act differently.  Ops retrying arbitration are
        timestamp-bound too: a frozen tick leaves every port free, so a
        failed grant proves the banks involved are waking from a gated
        state (usable at a known ``ready_at``), and a failed
        compressor/decompressor claim proves every issue slot is reserved
        past this cycle — the retries in between are pure no-ops.  The
        hint is additionally capped at the sampler's next boundary so
        timeline rows are taken on real ticks, exactly as when ticking
        cycle-by-cycle.
        """
        cycle = self.cycle
        if self._progress:
            return cycle + 1
        wake: int | None = None
        for op in self._inflight:
            if op.state is OpState.EXEC:
                w = op.exec_done
            elif op.state is OpState.WRITE:
                if cycle >= op.write_ready:
                    w = self._earliest_bank_wake(op.pending_write_banks)
                    if w is None:
                        return cycle + 1
                else:
                    w = op.write_ready
            elif op.state is OpState.COLLECT:
                w = self._collect_wake(op)
                if w is None:
                    return cycle + 1
            else:  # COMPRESS: waiting for a compressor issue slot
                w = self.compressors.next_free_cycle()
            if w <= cycle:
                return cycle + 1  # defensive: should have advanced
            if wake is None or w < wake:
                wake = w
        for next_issue in self._next_issue.values():
            if next_issue > cycle and (wake is None or next_issue < wake):
                wake = next_issue
        if self._region_queues:
            # Warps parked in a pending region queue carry no timestamp
            # of their own: their readiness flips on release events the
            # in-flight scan above only bounds when the blocking op
            # belongs to this SM's current freeze picture.  Any queued
            # warp that is past barrier/branch delay and not memo-blocked
            # could issue on the very next tick, so never skip past it.
            for w in self._region_queues:
                ctx = self._warps.get(w)
                if (
                    ctx is not None
                    and not ctx.at_barrier
                    and w not in self._blocked
                    and self._next_issue[w] <= cycle
                ):
                    return cycle + 1
        if wake is None:
            return cycle + 1  # nothing schedulable: never skip blindly
        if self.sampler is not None:
            wake = min(wake, self.sampler.next_sample)
        return max(wake, cycle + 1)

    def _earliest_bank_wake(self, banks) -> int | None:
        """Earliest wake-completion over ``banks``; None means "no skip".

        Only called for banks whose grant just failed in a frozen tick.
        Every port was free (a frozen tick grants nothing), so each bank
        must have failed the gating check: it was either already waking
        or gated — and the failed grant's ``ready_cycle_for_access`` has
        since put it in the WAKING state.  Any other state is unexpected
        and conservatively forces cycle-by-cycle ticking.
        """
        gating = self.arbiter.gating
        if gating is None:
            return None
        earliest: int | None = None
        for bank in banks:
            ready = gating.waking_ready_at(bank)
            if ready is None:
                return None
            if earliest is None or ready < earliest:
                earliest = ready
        return earliest

    def _collect_wake(self, op: InflightOp) -> int | None:
        """Earliest cycle a frozen COLLECT op's state can change.

        A read still owing bank accesses advances when the first of its
        (waking) banks becomes usable; a read that has its banks but not
        its decompression slot advances when a decompressor frees up;
        once every read is scheduled the op leaves COLLECT at the latest
        ``ready_at``.  None means the op must retry next cycle.
        """
        pending: int | None = None
        latest_ready = 0
        for read in op.reads:
            if read.pending_banks:
                c = self._earliest_bank_wake(read.pending_banks)
                if c is None:
                    return None
            elif read.ready_at is None:
                if not read.decompression_needed:
                    return None  # defensive: advance() would have run
                c = self.decompressors.next_free_cycle()
            else:
                if read.ready_at > latest_ready:
                    latest_ready = read.ready_at
                continue
            if pending is None or c < pending:
                pending = c
        return pending if pending is not None else latest_ready

    def skip_cycles(self, n: int) -> None:
        """Fast-forward ``n`` frozen cycles with identical accounting.

        Every skipped cycle would have run the exact same tick as the one
        just executed (same comparisons, same failed scheduler picks), so
        the only architecturally-visible effects are the cycle counter and
        the per-cycle stall statistics — replicated here verbatim.  All
        other accounting (gating intervals, unit reservations, energy
        events) is timestamp-based and needs no per-cycle upkeep.
        """
        if n <= 0:
            return
        self.cycle += n
        self.timing.cycles = self.cycle
        if self._idle_delta:
            self.timing.issue_idle_cycles += n * self._idle_delta
        if self._stall_delta:
            self.timing.collector_stall_cycles += n * self._stall_delta

    def _emit_counter_tracks(self, row: dict[str, float]) -> None:
        """Forward one sampler row to the tracer's counter tracks."""
        tracer, pid, ts = self.tracer, self.sm_index, self.cycle
        tracer.counter(
            pid,
            "bank accesses",
            ts,
            reads=row.get("energy.bank_reads", 0.0),
            writes=row.get("energy.bank_writes", 0.0),
        )
        tracer.counter(
            pid,
            "compressed occupancy",
            ts,
            fraction=row.get("regfile.compressed_fraction", 0.0),
        )
        tracer.counter(
            pid, "gated banks", ts, count=row.get("gating.gated_banks", 0.0)
        )
        tracer.counter(
            pid,
            "collector occupancy",
            ts,
            in_use=row.get("collector.in_use", 0.0),
        )
        tracer.counter(
            pid,
            "issue",
            ts,
            issued=row.get("sm.issued", 0.0),
            idle=row.get("sm.issue_idle", 0.0),
            movs=row.get("sm.movs", 0.0),
        )

    def _emit_op_spans(self, op: InflightOp) -> None:
        """Emit a retired op's lifetime and stage phases as trace spans."""
        tracer, pid = self.tracer, self.sm_index
        tid = op.warp_slot + 1
        result = op.result
        if op.is_mov:
            name = f"dummy MOV r{result.dst}"
        elif result.dst is not None:
            name = f"{result.instr.op.name} r{result.dst}"
        else:
            name = result.instr.op.name
        end = max(self.cycle, op.issued_at)
        args: dict = {"pc": result.pc, "divergent": result.divergent}
        if op.decision is not None:
            args["mode"] = op.decision.mode.name
            args["banks"] = op.decision.banks
        tracer.span(pid, tid, name, op.issued_at, end, **args)
        if op.collect_done > op.issued_at:
            tracer.span(pid, tid, "collect", op.issued_at, op.collect_done)
        exec_start = op.collect_done if op.collect_done >= 0 else op.issued_at
        if op.exec_done > exec_start:
            tracer.span(pid, tid, "exec", exec_start, min(op.exec_done, end))
        if (
            op.decision is not None
            and op.decision.compressor_used
            and op.write_ready > op.exec_done
        ):
            tracer.span(
                pid,
                COMPRESSOR_TID,
                f"compress r{result.dst}",
                op.exec_done,
                op.write_ready,
                warp=op.warp_slot,
                mode=op.decision.mode.name,
            )
        if op.state is OpState.WRITE and end > op.write_ready:
            tracer.span(pid, tid, "write", op.write_ready, end)

    # ----- writeback ---------------------------------------------------
    def _writeback_stage(self) -> None:
        retired_any = False
        write_state = OpState.WRITE
        cycle = self.cycle
        arbiter = self.arbiter
        for op in self._inflight:
            if op.state is not write_state or cycle < op.write_ready:
                continue
            granted = arbiter.grant_writes(op.pending_write_banks)
            if granted:
                self._progress = True
                self.energy.record_write(len(granted))
                remaining = [
                    b for b in op.pending_write_banks if b not in granted
                ]
                op.pending_write_banks = remaining
            if not op.pending_write_banks:
                self._commit(op)
                op.retired = True
                retired_any = True
                self._n_write -= 1
                if self.tracer is not None:
                    self._emit_op_spans(op)
        if retired_any:
            self._inflight = [op for op in self._inflight if not op.retired]

    def _commit(self, op: InflightOp) -> None:
        result = op.result
        ctx = self._warps[op.warp_slot]
        if self.checker is not None:
            self.checker.check_commit(result.values, op.decision)
        self.interpreter.apply(ctx, result)
        self.regfile.write_commit(
            op.warp_slot,
            result.dst,
            op.decision.mode,
            op.decision.banks,
            self.cycle,
        )
        if not op.is_mov:
            if op.prepared_sim_bin >= 0:
                self.value_stats.record_write_prepared(
                    result.divergent,
                    op.prepared_sim_bin,
                    op.prepared_achievable_banks,
                    stored_banks=op.decision.banks,
                    stored_mode=op.decision.mode,
                )
            else:
                self.value_stats.record_write(
                    result.values,
                    result.divergent,
                    achievable_mode=choose_mode(result.values),
                    stored_banks=op.decision.banks,
                    stored_mode=op.decision.mode,
                )
        self.scoreboard.release(op.warp_slot, result.dst)
        # The release may flip the warp's memoized scoreboard-blocked
        # verdict; a collector-blocked verdict is unaffected (it only
        # flips on a collector release, flushed in the issue stage).
        if op.warp_slot not in self._blocked_collector:
            self._blocked.discard(op.warp_slot)

    # ----- compress ----------------------------------------------------
    def _compress_stage(self) -> None:
        for op in self._inflight:
            if op.state is not OpState.COMPRESS:
                continue
            ready = self.compressors.try_start(self.cycle)
            if ready is None:
                continue  # both compressor issue slots taken this cycle
            self._progress = True
            op.state = OpState.WRITE
            self._n_compress -= 1
            self._n_write += 1
            op.write_ready = ready
            op.pending_write_banks = self.regfile.banks_of(
                self.regfile.slot(op.warp_slot, op.result.dst),
                op.decision.banks,
            )

    # ----- execute -----------------------------------------------------
    def _execute_stage(self) -> None:
        retired_any = False
        exec_state = OpState.EXEC
        cycle = self.cycle
        for op in self._inflight:
            if op.state is not exec_state or cycle < op.exec_done:
                continue
            self._progress = True
            self._n_exec -= 1
            result = op.result
            if result.dst is None:
                self.scoreboard.release(
                    op.warp_slot,
                    None,
                    result.instr.pred_dst.index
                    if result.instr.pred_dst
                    else None,
                )
                if op.warp_slot not in self._blocked_collector:
                    self._blocked.discard(op.warp_slot)
                op.retired = True
                retired_any = True
                if self.tracer is not None:
                    self._emit_op_spans(op)
                continue
            if result.instr.pred_dst is not None:
                self.scoreboard.release(
                    op.warp_slot, None, result.instr.pred_dst.index
                )
                if op.warp_slot not in self._blocked_collector:
                    self._blocked.discard(op.warp_slot)
            if self.rfc is not None:
                self._commit_to_cache(op)
                op.retired = True
                retired_any = True
                if self.tracer is not None:
                    self._emit_op_spans(op)
                continue
            op.decision = (
                op.predecided
                if op.predecided is not None
                else self._decide(op)
            )
            slot = self.regfile.slot(op.warp_slot, result.dst)
            if (
                self.policy.enabled
                and op.decision.compressor_used
                and not op.is_mov
            ):
                op.state = OpState.COMPRESS
                # Try for a compressor this very cycle; on a structural
                # hazard the compress stage retries next cycle.
                ready = self.compressors.try_start(self.cycle)
                if ready is not None:
                    op.state = OpState.WRITE
                    self._n_write += 1
                    op.write_ready = ready
                    op.pending_write_banks = self.regfile.banks_of(
                        slot, op.decision.banks
                    )
                else:
                    self._n_compress += 1
            else:
                op.state = OpState.WRITE
                self._n_write += 1
                op.write_ready = self.cycle
                op.pending_write_banks = self.regfile.banks_of(
                    slot, op.decision.banks
                )
        if retired_any:
            self._inflight = [op for op in self._inflight if not op.retired]

    def _decide(self, op: InflightOp) -> CompressionDecision:
        if op.is_mov:
            # The dummy MOV's entire purpose is to leave the destination
            # uncompressed so the following divergent write can proceed.
            return CompressionDecision(
                CompressionMode.UNCOMPRESSED,
                BANKS_PER_WARP_REGISTER,
                compressor_used=False,
            )
        return self.policy.decide(op.result.values, op.result.divergent)

    # ----- collect -----------------------------------------------------
    def _collect_stage(self) -> None:
        collect_state = OpState.COLLECT
        cycle = self.cycle
        arbiter = self.arbiter
        decompressors = self.decompressors
        for op in self._inflight:
            if op.state is not collect_state:
                continue
            all_ready = True
            for read in op.reads:
                if read.pending_banks:
                    granted = arbiter.grant_reads(read.pending_banks)
                    if granted:
                        self._progress = True
                        self.energy.record_read(len(granted))
                        read.pending_banks.difference_update(granted)
                unscheduled = read.ready_at is None
                if not read.advance(cycle, decompressors):
                    all_ready = False
                if unscheduled and read.ready_at is not None:
                    self._progress = True  # won a decompressor slot
                if (
                    self.tracer is not None
                    and unscheduled
                    and read.ready_at is not None
                    and read.decompression_needed
                ):
                    # The read just won a decompressor this cycle.
                    self.tracer.span(
                        self.sm_index,
                        DECOMPRESSOR_TID,
                        f"decompress r{read.reg}",
                        self.cycle,
                        read.ready_at,
                        warp=read.warp_slot,
                        mode=read.mode.name,
                    )
            if all_ready:
                self._progress = True
                if op.holds_collector:
                    self.collectors.release()
                    op.holds_collector = False
                op.state = OpState.EXEC
                self._n_collect -= 1
                self._n_exec += 1
                op.collect_done = self.cycle
                op.exec_done = self.cycle + self._latency[op.result.op_class]

    # ----- issue -------------------------------------------------------
    def _issue_stage(self) -> None:
        releases = self.collectors.releases
        if releases != self._coll_flush_seen:
            # A collector was released since the last issue scan, so every
            # "no collector free" verdict is stale: flush them in one
            # batch (their warps are re-derived by the pick loop below).
            self._coll_flush_seen = releases
            if self._blocked_collector:
                self._blocked.difference_update(self._blocked_collector)
                self._blocked_collector.clear()
        token = self._all_blocked
        if token is not None:
            if (
                token[0] == releases
                and token[1] == self.scoreboard.releases
                and token[2] == len(self._blocked)
                and token[3] == self._resident
            ):
                # Every resident warp was verified memo-blocked on a full
                # scheduler scan, and no release event (the only thing
                # that can flip a memoized verdict) has happened since:
                # nothing can issue.  Replay the idle accounting only.
                for scheduler in self.schedulers:
                    if scheduler._warps:
                        self.timing.issue_idle_cycles += 1
                return
            self._all_blocked = None
        issued = False
        memo = self._issue_cache_enabled
        blocked = self._blocked
        sched_tokens = self._sched_blocked
        for i, scheduler in enumerate(self.schedulers):
            stoken = sched_tokens[i]
            if stoken is not None:
                if (
                    stoken[0] == releases
                    and stoken[1] == self.scoreboard.releases
                    and stoken[2] == scheduler.generation
                ):
                    # Every warp in this scheduler was memo-blocked on its
                    # last scan, membership is unchanged, and no release
                    # event has happened since — its pick cannot succeed.
                    self.timing.issue_idle_cycles += 1
                    continue
                sched_tokens[i] = None
            picked = scheduler.pick(self._can_issue, blocked)
            if picked is not None:
                self._progress = True
                issued = True
                self._issue(picked)
            elif scheduler._warps:
                # Resident warps exist but none could issue this cycle.
                self.timing.issue_idle_cycles += 1
                if memo:
                    warps = scheduler._warps
                    for warp in warps:
                        if warp not in blocked:
                            break
                    else:
                        sched_tokens[i] = (
                            releases,
                            self.scoreboard.releases,
                            scheduler.generation,
                        )
        if not issued and memo:
            # Blocked-set entries are valid by construction (stale ones
            # are flushed or discarded at their release events), so after
            # a no-issue pass a full set means every resident warp is
            # provably stuck.  A warp blocked outside the memo (barrier,
            # branch latency) is never in the set, which keeps the counts
            # unequal — those verdicts are cycle-dependent and must be
            # re-checked every tick.
            resident = self._resident
            if resident and len(blocked) == resident:
                self._all_blocked = (
                    releases,
                    self.scoreboard.releases,
                    resident,
                    resident,
                )

    def _needs_mov(self, warp_slot: int, instr: Instruction, exec_mask: int) -> bool:
        # _mov_candidate folds the two static disqualifiers: a register
        # file cache merges divergent writes into the cache line (no
        # decompressing MOV ever), and policies without the paper's
        # dummy-MOV rule never inject one.
        if (
            not self._mov_candidate
            or instr.dst is None
            or exec_mask == self._full_mask
        ):
            return False
        return self.regfile.is_compressed(warp_slot, instr.dst.index)

    def _stalled(self, warp_slot: int, cause: str) -> bool:
        """Record why a warp cannot issue (tracer only) and return False."""
        if self.tracer is not None:
            self._stall_cause[warp_slot] = cause
        return False

    def _can_issue(self, warp_slot: int) -> bool:
        # Callers (the pick loop) skip warps in self._blocked, so this
        # always re-derives the full readiness chain.  A blocked verdict
        # is recorded into the set; it is only ever recorded for a warp
        # that is past its barrier and branch latency, and neither can
        # change while the warp is unable to issue (both are set by the
        # warp's own issue), so the memoized verdict stays safe until the
        # corresponding release event removes it.
        memo = self._issue_cache_enabled
        ctx = self._warps[warp_slot]
        if ctx.at_barrier:
            return self._stalled(warp_slot, "barrier")
        if self.cycle < self._next_issue[warp_slot]:
            return self._stalled(warp_slot, "branch latency")
        peeked = self._peek_cache.get(warp_slot, _PEEK_MISS)
        if peeked is _PEEK_MISS:
            peeked = self._peek(warp_slot, ctx)
        if peeked is None:
            if memo:
                self._blocked.add(warp_slot)
            return self._stalled(warp_slot, "drained")
        instr, exec_mask, _ = peeked
        srcs, read_preds, dst_index, pred_dst_index = instr.issue_operands()
        if self._needs_mov(warp_slot, instr, exec_mask):
            if not self.collectors.available:
                if memo:
                    self._blocked.add(warp_slot)
                    self._blocked_collector.add(warp_slot)
                return self._stalled(warp_slot, "collector")
            if self.scoreboard.blocked(warp_slot, (dst_index,), dst_index):
                if memo:
                    self._blocked.add(warp_slot)
                return self._stalled(warp_slot, "scoreboard")
            return True
        # RFC hits bypass the operand collector, but RAW hazards must be
        # checked on every source regardless of caching.
        uncached = srcs
        if self.rfc is not None:
            uncached = tuple(
                r for r in srcs if not self.rfc.contains(warp_slot, r)
            )
        if uncached and not self.collectors.available:
            self.timing.collector_stall_cycles += 1
            if memo:
                self._blocked.add(warp_slot)
                self._blocked_collector.add(warp_slot)
            return self._stalled(warp_slot, "collector")
        if self.scoreboard.blocked(
            warp_slot, srcs, dst_index, read_preds, pred_dst_index
        ):
            if memo:
                self._blocked.add(warp_slot)
            return self._stalled(warp_slot, "scoreboard")
        return True

    def _peek(self, warp_slot: int, ctx: WarpContext) -> tuple | None:
        """Cached :meth:`Interpreter.peek` — one real fetch per issue."""
        cached = self._peek_cache.get(warp_slot, _PEEK_MISS)
        if cached is not _PEEK_MISS:
            return cached
        peeked = self.interpreter.peek(ctx)
        self._peek_cache[warp_slot] = peeked
        if peeked is None:
            self._drained.add(warp_slot)
        return peeked

    def _issue(self, warp_slot: int) -> None:
        ctx = self._warps[warp_slot]
        peeked = self._peek(warp_slot, ctx)
        instr, exec_mask, pc = peeked
        if self._needs_mov(warp_slot, instr, exec_mask):
            # The dummy MOV issues *instead of* the peeked instruction,
            # which stays pending: the fetch state is untouched and the
            # peek cache entry stays valid.  A region queue head stays
            # valid too — the MOV rewrites the destination with its own
            # committed value, changing storage layout but not contents.
            self._issue_mov(warp_slot, instr.dst.index)
            return
        queue = self._region_queues.get(warp_slot)
        if queue is not None:
            self._issue_from_queue(warp_slot, ctx, queue)
            return
        if self._batch_gate and self._resident > 1:
            region = self._regions.get(pc)
            if (
                region is not None
                and self._gather_backoff.get(
                    region.head + len(region.steps), 0
                )
                <= self.cycle
                and self._batchable(warp_slot, ctx, region)
                and self._gather_region(warp_slot, region)
            ):
                self._issue_from_queue(
                    warp_slot, ctx, self._region_queues[warp_slot]
                )
                return
        result = self.interpreter.execute(ctx, peeked)
        # The warp's stack (and possibly predicates) just moved; the next
        # fetch must re-peek.  Doing so immediately (rather than at the
        # next readiness check) keeps _drained current for this tick's
        # retire scan, at the same one-real-fetch-per-issue cost.
        del self._peek_cache[warp_slot]
        self._peek(warp_slot, ctx)
        self.timing.issued += 1
        self.value_stats.record_instruction(result.base_divergent)
        self.value_stats.record_occupancy(
            self.regfile.compressed_fraction, result.base_divergent
        )
        if result.is_barrier:
            self._enter_barrier(warp_slot)
            return
        if result.instr.op is Op.BRA:
            # Branch resolution delay before the warp may issue again.
            self._next_issue[warp_slot] = self.cycle + self.config.alu_latency
            return
        if result.is_exit and result.dst is None:
            return
        self._enqueue(warp_slot, result, is_mov=False)

    def _issue_mov(self, warp_slot: int, reg: int) -> None:
        """Inject the decompressing dummy MOV of Section 5.2."""
        ctx = self._warps[warp_slot]
        values = ctx.registers[reg].copy()
        result = ExecResult(
            instr=Instruction(Op.MOV, dst=None),
            pc=-1,
            exec_mask=(1 << self.config.warp_size) - 1,
            base_mask=(1 << self.config.warp_size) - 1,
            divergent=False,
            op_class=OpClass.ALU,
            dst=reg,
            values=values,
            src_regs=(reg,),
        )
        self.value_stats.record_mov()
        self.timing.issued += 1
        self._enqueue(warp_slot, result, is_mov=True)

    # ----- cross-warp batched issue (repro.gpu.batch) -------------------
    def _batchable(
        self, warp_slot: int, ctx: WarpContext, region: Region
    ) -> bool:
        """Whether a warp parked at ``region``'s head may join a group.

        The warp's in-flight register writes must not target anything
        the region reads: its live-in set (the stricter ``div`` variant
        when the warp's base mask is partial, because then every region
        write also merges stale destination lanes).  Registers outside
        the live-in set may land mid-replay — the region overwrites them
        before any read or never reads them.  Pending *predicate*
        releases are ignored: predicate values are written at issue and
        already current here.
        """
        pend = self.scoreboard.pending_regs(warp_slot)
        if not pend:
            return True
        live = (
            region.live_in_full
            if ctx.stack.active_mask == self._full_mask
            else region.live_in_div
        )
        return pend.isdisjoint(live)

    def _gather_region(self, warp_slot: int, region: Region) -> bool:
        """Pre-execute the segment around ``region`` for eligible warps.

        Called from :meth:`_issue` the moment ``warp_slot`` is about to
        issue ``region``'s head.  The sweep collects every co-resident
        warp parked anywhere in the *same straight-line segment* — all
        suffix regions of one segment share their end pc, so a warp at a
        different offset joins with a later entry into the longest
        member suffix — provided none of its in-flight writes touch its
        own suffix's live-in set (see :meth:`_batchable`).  From gather
        until its queue empties, every value a member's steps read is
        frozen — the only writers left are the region's own instructions
        (modelled by the evaluator's overlays) and value-neutral dummy
        MOVs.  Warps still inside barrier or branch delay may join;
        their timing is enforced per-cycle by the unchanged readiness
        checks when their queued ops actually issue.  Group membership
        affects no architectural outcome (rows are evaluated
        independently), so gathering across both schedulers is free
        parallelism.

        Returns ``False`` without queueing anything when no other warp
        can join: a singleton group would pay the evaluator's stacking
        overhead with nothing to amortise it against, so the caller
        falls through to the (memoized) per-warp issue path instead.
        """
        regions = self._regions
        end = region.head + len(region.steps)
        queues_by_slot = self._region_queues
        group: list[int] = []
        member_regions: dict[int, Region] = {warp_slot: region}
        for scheduler in self.schedulers:
            for w in scheduler._warps:
                if w in queues_by_slot:
                    continue
                if w == warp_slot:
                    group.append(w)
                    continue
                wctx = self._warps[w]
                peeked = self._peek(w, wctx)
                if peeked is None:
                    continue
                wregion = regions.get(peeked[2])
                if (
                    wregion is not None
                    and wregion.head + len(wregion.steps) == end
                    and self._batchable(w, wctx, wregion)
                ):
                    group.append(w)
                    member_regions[w] = wregion
        if len(group) < 2:
            # Nobody to amortise against right now; don't re-sweep this
            # segment every issue — peers arrive on warp-switch
            # timescales, so a short host-side cooldown costs at most a
            # few missed two-warp groups.  (Timing-neutral: the warp
            # falls through to the normal per-warp issue either way.)
            self._gather_backoff[end] = self.cycle + 16
            return False
        group.sort()
        base_head = min(member_regions[w].head for w in group)
        entries = [member_regions[w].head - base_head for w in group]
        queues = evaluate_region(
            regions[base_head],
            [self._warps[w] for w in group],
            entries,
            self.policy,
            self.config.warp_size,
            self.value_stats.collect_bdi,
        )
        for w, q in zip(group, queues):
            queues_by_slot[w] = q
        n = len(group)
        BATCH_STATS.record(n, sum(len(q) for q in queues))
        self._batch_hist.observe(n)
        if self._resident:
            self._group_gauge.set(n / self._resident)
        return True

    def _issue_from_queue(
        self, warp_slot: int, ctx: WarpContext, queue
    ) -> None:
        """Issue the head of a warp's region queue.

        Replays exactly what :meth:`_issue` does for the same
        instruction, with the interpreter's work already done: the SIMT
        stack advances (region interiors exclude every reconvergence
        point, so a bare advance is the whole stack update), a
        precomputed predicate row replaces the setp-at-issue write, and
        the peek cache is repointed at the next queue entry so readiness
        checks keep running against the warp's true next instruction.
        """
        qop: QueuedOp = queue.popleft()
        ctx.stack.advance()
        if qop.pred_index >= 0:
            ctx.preds[qop.pred_index] = qop.pred_row
        if queue:
            self._peek_cache[warp_slot] = queue[0].peek
        else:
            del self._region_queues[warp_slot]
            del self._peek_cache[warp_slot]
            self._peek(warp_slot, ctx)
        result = qop.result
        self.timing.issued += 1
        self.value_stats.record_instruction(result.base_divergent)
        self.value_stats.record_occupancy(
            self.regfile.compressed_fraction, result.base_divergent
        )
        self._enqueue(warp_slot, result, is_mov=False, queued=qop)

    def _enqueue(
        self,
        warp_slot: int,
        result: ExecResult,
        is_mov: bool,
        queued: QueuedOp | None = None,
    ) -> None:
        srcs = result.src_regs
        if len(srcs) > 1:
            # Repeated sources collect once (one port grant per operand).
            srcs = tuple(dict.fromkeys(srcs))
        reads = []
        rfc = self.rfc
        regfile = self.regfile
        for reg in srcs:
            if rfc is not None and rfc.read(warp_slot, reg):
                self.energy.record_rfc(1)
                continue
            mode, banks = regfile.read_meta(warp_slot, reg)
            reads.append(
                OperandRead(
                    warp_slot=warp_slot,
                    reg=reg,
                    mode=mode,
                    pending_banks=set(banks),
                    banks_total=len(banks),
                    decompression_needed=mode.is_compressed,
                )
            )
        op = InflightOp(
            warp_slot=warp_slot,
            result=result,
            reads=reads,
            is_mov=is_mov,
            issued_at=self.cycle,
        )
        if queued is not None:
            op.predecided = queued.decision
            op.prepared_sim_bin = queued.sim_bin
            op.prepared_achievable_banks = queued.achievable_banks
        if reads:
            self.collectors.allocate()
            op.holds_collector = True
            self._n_collect += 1
        if not reads:
            # No operands to gather: skip straight to execution.
            op.state = OpState.EXEC
            self._n_exec += 1
            op.collect_done = self.cycle
            op.exec_done = self.cycle + self._latency[result.op_class]
        if self.tracer is not None:
            last = self._last_issue_cycle.get(warp_slot, self.cycle)
            if self.cycle - last > 1:
                self.tracer.span(
                    self.sm_index,
                    warp_slot + 1,
                    "stall",
                    last,
                    self.cycle,
                    cause=self._stall_cause.get(warp_slot, "unknown"),
                )
            self._last_issue_cycle[warp_slot] = self.cycle
        self.scoreboard.reserve(
            warp_slot,
            result.dst,
            result.instr.pred_dst.index if result.instr.pred_dst else None,
        )
        self._inflight.append(op)

    # ----- register file cache (extension) ------------------------------
    def _commit_to_cache(self, op: InflightOp) -> None:
        """Write a result into the RFC; banks are touched only on evict."""
        result = op.result
        ctx = self._warps[op.warp_slot]
        slot = self.regfile.slot(op.warp_slot, result.dst)
        if (
            result.divergent
            and not self.rfc.contains(op.warp_slot, result.dst)
            and self.regfile.is_compressed(op.warp_slot, result.dst)
        ):
            # Write-allocating a partially-written register fills the
            # line from the register file first.
            banks = self.regfile.read_banks(op.warp_slot, result.dst)
            self.energy.record_read(len(banks))
            self.energy.record_decompression(1)
        self.interpreter.apply(ctx, result)
        self.energy.record_rfc(1)
        decision = (
            self.policy.decide(result.values, divergent=False)
            if self.policy.enabled
            else CompressionDecision(
                CompressionMode.UNCOMPRESSED,
                BANKS_PER_WARP_REGISTER,
                compressor_used=False,
            )
        )
        if self.checker is not None:
            self.checker.check_commit(result.values, decision)
        self.value_stats.record_write(
            result.values,
            result.divergent,
            achievable_mode=choose_mode(result.values),
            stored_banks=decision.banks,
            stored_mode=decision.mode,
        )
        evicted = self.rfc.write(op.warp_slot, result.dst)
        if evicted is not None:
            self._evict_to_banks(op.warp_slot, evicted)
        self.scoreboard.release(op.warp_slot, result.dst)

    def _evict_to_banks(self, warp_slot: int, reg: int) -> None:
        """Write an evicted cache line back to the register banks.

        Evictions carry the full merged 32-lane value, so they always
        compress cleanly; the writeback is treated as buffered (energy
        charged, no port contention on the critical path).
        """
        slot = self.regfile.slot(warp_slot, reg)
        values = self.regfile.values[slot]
        if self.policy.enabled:
            decision = self.policy.decide(values, divergent=False)
            if decision.compressor_used:
                self.energy.record_compression(1)
        else:
            decision = CompressionDecision(
                CompressionMode.UNCOMPRESSED,
                BANKS_PER_WARP_REGISTER,
                compressor_used=False,
            )
        if self.checker is not None:
            self.checker.check_commit(values, decision)
        self.regfile.write_commit(
            warp_slot, reg, decision.mode, decision.banks, self.cycle
        )
        self.energy.record_write(decision.banks)

    # ----- barriers / retirement ---------------------------------------
    def _enter_barrier(self, warp_slot: int) -> None:
        ctx = self._warps[warp_slot]
        ctx.at_barrier = True
        cta = self._ctas[self._warp_cta[warp_slot]]
        # Warps whose threads have all exited no longer participate.
        live = [
            s
            for s in cta.warp_slots
            if s in self._warps and not self._warps[s].done
        ]
        if all(self._warps[s].at_barrier for s in live):
            for s in live:
                self._warps[s].at_barrier = False

    def _retire_warps(self) -> None:
        # Drained ⟺ the (cached) fetch comes back empty, and every real
        # peek registers empty fetches in _drained — so only that
        # (almost always empty) set needs scanning, not all residents.
        if not self._drained:
            return
        inflight_slots = {op.warp_slot for op in self._inflight}
        for warp_slot in sorted(self._drained):
            if warp_slot in inflight_slots or self.scoreboard.pending(warp_slot):
                continue
            self._progress = True
            if self.rfc is not None:
                for reg in self.rfc.flush_warp(warp_slot):
                    self._evict_to_banks(warp_slot, reg)
            self.schedulers[warp_slot % len(self.schedulers)].remove_warp(
                warp_slot
            )
            self._resident -= 1
            self.scoreboard.clear_warp(warp_slot)
            del self._warps[warp_slot]
            del self._next_issue[warp_slot]
            self._peek_cache.pop(warp_slot, None)
            self._region_queues.pop(warp_slot, None)
            self._drained.discard(warp_slot)
            self._blocked.discard(warp_slot)
            self._blocked_collector.discard(warp_slot)
            cta = self._ctas[self._warp_cta.pop(warp_slot)]
            cta.remaining -= 1
            if cta.remaining == 0:
                for slot in cta.warp_slots:
                    self.regfile.free_warp(slot, self.cycle)
                    self._free_slots.append(slot)
                self._free_slots.sort()
                del self._ctas[cta.cta_id]

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close gating intervals and push unit activations to energy."""
        if self.checker is not None:
            self.checker.check_finalize(self)
        if self.gating is not None:
            self.gating.finalize(self.cycle)
            self.energy.finalize(
                self.cycle,
                [self.gating.gated_cycles(b) for b in range(self.config.num_banks)],
            )
        else:
            self.energy.finalize(self.cycle)
        self.energy.record_compression(self.compressors.activations)
        self.energy.record_decompression(self.decompressors.activations)
        if self.sampler is not None:
            self.timeline = self.sampler.finish(self.cycle)

    def gated_fractions(self) -> list[float] | None:
        if self.gating is None:
            return None
        return self.gating.gated_fractions(self.cycle)

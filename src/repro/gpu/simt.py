"""SIMT reconvergence stack (immediate post-dominator scheme).

Models the divergence hardware described in Section 5.2's background: on a
divergent branch, the current stack top becomes the reconvergence entry
(its PC moved to the join point, keeping the pre-branch mask), and entries
for the taken and fall-through lane subsets are pushed; when the executing
entry's PC reaches its reconvergence PC it is popped, merging lanes back.

Masks are Python ints used as 32-bit (warp-size) bitmaps: bit ``i`` set
means lane ``i`` participates.
"""

from __future__ import annotations

from dataclasses import dataclass


def popcount(mask: int) -> int:
    """Number of active lanes in a bitmap mask."""
    return mask.bit_count()


def full_mask(warp_size: int) -> int:
    """Mask with all ``warp_size`` lanes active."""
    return (1 << warp_size) - 1


@dataclass(slots=True)
class StackEntry:
    """One SIMT stack entry: where to execute, with which lanes."""

    pc: int
    mask: int
    reconv: int | None  #: ``None`` marks the base entry (never popped).


class SimtStack:
    """Per-warp divergence stack.

    The warp is finished when every lane has exited; the stack then
    reports :attr:`done`.
    """

    def __init__(self, warp_size: int, start_pc: int = 0, mask: int | None = None):
        self.warp_size = warp_size
        initial = full_mask(warp_size) if mask is None else mask
        if initial == 0:
            raise ValueError("warp must start with at least one active lane")
        self._stack: list[StackEntry] = [StackEntry(start_pc, initial, None)]

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self._stack

    @property
    def top(self) -> StackEntry:
        if not self._stack:
            raise RuntimeError("warp has finished; stack is empty")
        return self._stack[-1]

    @property
    def pc(self) -> int:
        return self.top.pc

    @property
    def active_mask(self) -> int:
        return self.top.mask

    @property
    def depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    # Execution interface
    # ------------------------------------------------------------------
    def settle(self) -> None:
        """Pop entries whose PC reached their reconvergence point.

        Called before each fetch so the visible top entry is always an
        executable one.
        """
        while self._stack:
            top = self._stack[-1]
            if top.mask == 0:
                self._stack.pop()
                continue
            if top.reconv is not None and top.pc == top.reconv:
                self._stack.pop()
                continue
            break

    def advance(self) -> None:
        """Move the executing entry past the current instruction."""
        self.top.pc += 1

    def branch(self, taken_mask: int, target: int, reconv: int) -> None:
        """Resolve a (possibly divergent) branch at the current entry.

        ``taken_mask`` is the subset of the active mask jumping to
        ``target``; the rest fall through to ``pc + 1``.  ``reconv`` is the
        branch's immediate post-dominator.
        """
        top = self.top
        taken = taken_mask & top.mask
        fallthrough = top.mask & ~taken
        if taken and fallthrough:
            # Divergence: the current entry becomes the reconvergence
            # entry (keeping the union mask); the fall-through subset
            # executes first, then the taken subset, then they merge.
            branch_pc = top.pc
            top.pc = reconv
            if target != reconv:
                self._stack.append(StackEntry(target, taken, reconv))
            self._stack.append(StackEntry(branch_pc + 1, fallthrough, reconv))
        elif taken:
            top.pc = target
        else:
            top.pc += 1

    def exit_lanes(self, mask: int) -> None:
        """Permanently retire ``mask`` lanes from every stack entry."""
        for entry in self._stack:
            entry.mask &= ~mask
        self.settle()

"""Kernel container: an instruction list plus launch metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.isa import Instruction, Op


@dataclass
class Kernel:
    """A compiled kernel ready for launch.

    ``num_registers`` is the per-thread architectural register count —
    the quantity that limits occupancy and sizes the register-file
    allocation (paper Section 2.1).  ``param_names`` documents the launch
    parameter order; parameters are 32-bit scalars or buffer addresses.
    """

    name: str
    instructions: list[Instruction]
    num_registers: int
    param_names: tuple[str, ...] = ()
    shared_bytes: int = 0
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError(f"kernel {self.name!r} has no instructions")
        if self.num_registers <= 0:
            raise ValueError(f"kernel {self.name!r} uses no registers")
        self._validate()

    def _validate(self) -> None:
        end = len(self.instructions)
        for i, instr in enumerate(self.instructions):
            if instr.op is Op.BRA:
                if instr.target is None or instr.reconv is None:
                    raise ValueError(
                        f"{self.name}[{i}]: unresolved branch {instr}"
                    )
                if not 0 <= instr.target <= end or not 0 <= instr.reconv <= end:
                    raise ValueError(
                        f"{self.name}[{i}]: branch target/reconv out of range"
                    )
            for reg in instr.source_registers():
                if reg >= self.num_registers:
                    raise ValueError(
                        f"{self.name}[{i}]: reads r{reg} but kernel declares "
                        f"{self.num_registers} registers"
                    )
            if instr.dst is not None and instr.dst.index >= self.num_registers:
                raise ValueError(
                    f"{self.name}[{i}]: writes {instr.dst} but kernel declares "
                    f"{self.num_registers} registers"
                )
        if not any(i.op is Op.EXIT for i in self.instructions):
            raise ValueError(f"kernel {self.name!r} has no EXIT instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Human-readable disassembly with labels."""
        by_index: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = [f".kernel {self.name}  regs={self.num_registers}"]
        for i, instr in enumerate(self.instructions):
            for label in by_index.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"  {i:4d}  {instr}")
        return "\n".join(lines)

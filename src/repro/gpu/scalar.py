"""Scalar per-lane reference semantics for the vectorized interpreter.

The interpreter executes all 32 lanes of a warp as one numpy array per
opcode (:mod:`repro.gpu.interpreter`'s kernel tables).  This module is
the lane-at-a-time ground truth those array kernels are pinned against:
every pure-arithmetic opcode is implemented here on ONE lane value,
with the wraparound / masking / rounding semantics written out
explicitly instead of inherited from numpy broadcasting.

Integer semantics use plain Python integers with explicit modulo-2**32
masking, so overflow behaviour is defined by this file rather than by a
dtype.  Float semantics operate on ``numpy`` *scalars* (``np.float32``)
— the per-lane definition of an op like FDIV or FEXP is "the platform
float32 routine applied to one value", and using numpy scalars keeps
the reference bit-identical to the array kernels without re-deriving
libm.  Values cross the boundary as raw ``uint32`` bit patterns in both
directions.

The hypothesis parity suite (``tests/test_vector_parity.py``) drives
:func:`repro.gpu.interpreter.compute_vector` and
:func:`scalar_compute` with the same random operands — including
overflow, shift-amount, and division edge cases — and requires
bit-identical results lane by lane.  The scalar path is also the
documented fallback semantics for any future opcode whose array kernel
has not landed yet.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.isa import Cmp, Op

MASK32 = 0xFFFFFFFF


def _u32(value: int) -> int:
    """Truncate an unbounded Python int to its uint32 bit pattern."""
    return value & MASK32


def _s32(value: int) -> int:
    """Reinterpret a uint32 bit pattern as a signed 32-bit value."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _f32(bits: int) -> np.float32:
    """The float32 value stored in a uint32 bit pattern."""
    return np.uint32(bits).view(np.float32)


def _bits(value: np.float32) -> int:
    """The uint32 bit pattern of a float32 value."""
    return int(np.float32(value).view(np.uint32))


# ----------------------------------------------------------------------
# Integer ops: pure Python ints, wraparound spelled out.
# ----------------------------------------------------------------------
def scalar_int_binop(op: Op, a: int, b: int) -> int:
    """One lane of an integer binary op on uint32 bit patterns."""
    a, b = _u32(a), _u32(b)
    if op is Op.IADD:
        return _u32(a + b)
    if op is Op.ISUB:
        return _u32(a - b)
    if op is Op.IMUL:
        return _u32(a * b)
    if op is Op.IMIN:
        return _u32(min(_s32(a), _s32(b)))
    if op is Op.IMAX:
        return _u32(max(_s32(a), _s32(b)))
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    if op is Op.XOR:
        return a ^ b
    # Shift amounts use only the low five bits of the b operand, as on
    # real 32-bit shifters (and as the array kernels' ``b & 31``).
    if op is Op.SHL:
        return _u32(a << (b & 31))
    if op is Op.SHR:
        return a >> (b & 31)
    if op is Op.SAR:
        return _u32(_s32(a) >> (b & 31))
    raise ValueError(f"{op} is not an integer binary op")


def scalar_imad(a: int, b: int, c: int) -> int:
    """One lane of IMAD: ``a * b + c`` modulo 2**32."""
    return _u32(_u32(a) * _u32(b) + _u32(c))


def scalar_not(a: int) -> int:
    """One lane of bitwise NOT."""
    return _u32(~_u32(a))


# ----------------------------------------------------------------------
# Float ops: numpy float32 scalars, one lane at a time.
# ----------------------------------------------------------------------
_FLOAT_BINOP_FNS = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: np.minimum,
    Op.FMAX: np.maximum,
    Op.FDIV: lambda a, b: a / b,
}

_FLOAT_UNOP_FNS = {
    Op.FABS: np.abs,
    Op.FNEG: lambda a: -a,
    Op.FRCP: lambda a: np.float32(1.0) / a,
    Op.FSQRT: np.sqrt,
    Op.FEXP: np.exp,
    Op.FLOG: np.log,
    Op.FSIN: np.sin,
    Op.FCOS: np.cos,
}


def scalar_float_binop(op: Op, a: int, b: int) -> int:
    """One lane of a float binary op; bit patterns in, bit pattern out."""
    fn = _FLOAT_BINOP_FNS.get(op)
    if fn is None:
        raise ValueError(f"{op} is not a float binary op")
    with np.errstate(all="ignore"):
        return _bits(fn(_f32(a), _f32(b)))


def scalar_float_unop(op: Op, a: int) -> int:
    """One lane of a float unary op; bit pattern in, bit pattern out."""
    fn = _FLOAT_UNOP_FNS.get(op)
    if fn is None:
        raise ValueError(f"{op} is not a float unary op")
    with np.errstate(all="ignore"):
        return _bits(fn(_f32(a)))


def scalar_ffma(a: int, b: int, c: int) -> int:
    """One lane of FFMA with an intermediate float32 rounding step.

    The simulator's FFMA is *not* fused: ``a * b`` rounds to float32
    before the add, matching the array kernel's two-step evaluation.
    """
    with np.errstate(all="ignore"):
        return _bits(_f32(a) * _f32(b) + _f32(c))


def scalar_i2f(a: int) -> int:
    """One lane of I2F: signed 32-bit int to the nearest float32."""
    return _bits(np.float32(_s32(a)))


def scalar_f2i(a: int) -> int:
    """One lane of F2I: truncate toward zero, saturate, NaN to zero."""
    f = _f32(a)
    if np.isnan(f):
        return 0
    with np.errstate(all="ignore"):
        value = float(np.trunc(f))
    if value >= 2.0**31:
        value = float(2**31 - 1)
    elif value <= -(2.0**31):
        value = float(-(2**31))
    # Clip in float space exactly as the array kernel does: the upper
    # int32 bound is not float32-representable, so a truncated value of
    # 2**31 survives the clip and wraps through the int32 cast.
    clipped = np.clip(np.float32(value), -(2**31), 2**31 - 1)
    with np.errstate(all="ignore"):
        return int(
            np.asarray(clipped, dtype=np.float32)
            .astype(np.int32)
            .view(np.uint32)[()]
        )


# ----------------------------------------------------------------------
# Comparisons and masked writeback.
# ----------------------------------------------------------------------
def scalar_compare(cmp: Cmp, a: int, b: int, *, as_float: bool) -> bool:
    """One lane of ISETP/FSETP on uint32 bit patterns."""
    if as_float:
        fa, fb = _f32(a), _f32(b)
        with np.errstate(all="ignore"):
            outcomes = {
                Cmp.EQ: fa == fb,
                Cmp.NE: fa != fb,
                Cmp.LT: fa < fb,
                Cmp.LE: fa <= fb,
                Cmp.GT: fa > fb,
                Cmp.GE: fa >= fb,
            }
        return bool(outcomes[cmp])
    sa, sb = _s32(a), _s32(b)
    outcomes = {
        Cmp.EQ: sa == sb,
        Cmp.NE: sa != sb,
        Cmp.LT: sa < sb,
        Cmp.LE: sa <= sb,
        Cmp.GT: sa > sb,
        Cmp.GE: sa >= sb,
    }
    return outcomes[cmp]


def scalar_merge(old: list[int], new: list[int], mask: int) -> list[int]:
    """Masked writeback: lane i takes ``new[i]`` iff bit i of ``mask``."""
    return [
        _u32(new[i]) if (mask >> i) & 1 else _u32(old[i])
        for i in range(len(old))
    ]


# ----------------------------------------------------------------------
# Dispatch mirror of interpreter.compute_vector.
# ----------------------------------------------------------------------
_INT_BINOP_OPS = frozenset(
    (
        Op.IADD,
        Op.ISUB,
        Op.IMUL,
        Op.IMIN,
        Op.IMAX,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.SAR,
    )
)


def scalar_compute(op: Op, *operands: int) -> int:
    """One lane of any pure-arithmetic opcode, on uint32 bit patterns.

    The scalar mirror of
    :func:`repro.gpu.interpreter.compute_vector`: same opcode coverage,
    one lane at a time.
    """
    if op in _INT_BINOP_OPS:
        return scalar_int_binop(op, *operands)
    if op in _FLOAT_BINOP_FNS:
        return scalar_float_binop(op, *operands)
    if op in _FLOAT_UNOP_FNS:
        return scalar_float_unop(op, *operands)
    if op is Op.IMAD:
        return scalar_imad(*operands)
    if op is Op.FFMA:
        return scalar_ffma(*operands)
    if op is Op.NOT:
        return scalar_not(*operands)
    if op is Op.I2F:
        return scalar_i2f(*operands)
    if op is Op.F2I:
        return scalar_f2i(*operands)
    raise ValueError(f"{op} is not a pure-arithmetic opcode")


__all__ = [
    "scalar_compare",
    "scalar_compute",
    "scalar_f2i",
    "scalar_ffma",
    "scalar_float_binop",
    "scalar_float_unop",
    "scalar_i2f",
    "scalar_imad",
    "scalar_int_binop",
    "scalar_merge",
    "scalar_not",
]

"""Kernel launch convenience layer."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU, SimulationResult
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.power.params import EnergyParams


@dataclass
class LaunchSpec:
    """Everything needed to launch a kernel.

    Benchmarks construct one of these (kernel + pre-initialised global
    memory + grid geometry + parameter vector) so that the same launch can
    be replayed under many simulator configurations.
    """

    kernel: Kernel
    grid_dim: tuple[int, int]
    cta_dim: tuple[int, int]
    params: list[int]
    gmem_factory: object = None  #: zero-arg callable building GlobalMemory
    buffers: dict = field(default_factory=dict)  #: name -> base address
    meta: dict = field(default_factory=dict)  #: benchmark-specific extras

    def fresh_memory(self) -> GlobalMemory:
        if self.gmem_factory is None:
            return GlobalMemory()
        return self.gmem_factory()

    @property
    def total_threads(self) -> int:
        return (
            self.grid_dim[0]
            * self.grid_dim[1]
            * self.cta_dim[0]
            * self.cta_dim[1]
        )


def run_kernel(
    kernel: Kernel,
    grid_dim: tuple[int, int],
    cta_dim: tuple[int, int],
    params: list[int],
    gmem: GlobalMemory,
    config: GPUConfig | None = None,
    policy: str = "warped",
    energy_params: EnergyParams | None = None,
    collect_bdi: bool = False,
    tracer=None,
) -> SimulationResult:
    """Run one kernel launch on a freshly-constructed GPU.

    ``tracer`` (a :class:`repro.obs.tracer.EventTracer`) records the
    run's pipeline spans and counter tracks for Chrome-trace export.
    """
    gpu = GPU(
        config=config,
        policy=policy,
        energy_params=energy_params,
        collect_bdi=collect_bdi,
        tracer=tracer,
    )
    return gpu.run(kernel, grid_dim, cta_dim, params, gmem)

"""GPU microarchitectural configuration (paper Table 2 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.banks import BANK_BYTES, BANKS_PER_WARP_REGISTER


@dataclass(frozen=True)
class GPUConfig:
    """Simulated GPU parameters.

    The defaults reproduce paper Table 2 except ``num_sms``: the paper
    simulates a 15-SM GTX 480-class part, but every reported metric is a
    per-register-file ratio, so experiments default to one SM for speed
    (the launcher distributes CTAs across however many are configured).
    """

    # ----- chip ------------------------------------------------------
    clock_ghz: float = 1.4
    num_sms: int = 1

    # ----- SM front end ----------------------------------------------
    warp_size: int = 32
    max_warps_per_sm: int = 48
    max_threads_per_sm: int = 1536
    num_schedulers: int = 2
    scheduler_policy: str = "gto"  #: ``gto`` or ``lrr``
    num_collectors: int = 8

    # ----- register file ---------------------------------------------
    register_file_bytes: int = 128 * 1024
    num_banks: int = 32
    bank_bytes: int = BANK_BYTES
    entries_per_bank: int = 256

    # ----- compression -----------------------------------------------
    num_compressors: int = 2
    num_decompressors: int = 4
    compression_latency: int = 2
    decompression_latency: int = 1
    bank_wakeup_latency: int = 10
    #: idle cycles before an empty bank is gated (sleep hysteresis,
    #: prevents gate/wake thrash for registers whose width oscillates)
    bank_gate_delay: int = 64
    #: per-warp register-file-cache entries (0 = no RFC; extension
    #: reproducing Gebhart et al. 2011 for the orthogonality study)
    rfc_entries_per_warp: int = 0

    # ----- execution latencies (cycles) -------------------------------
    alu_latency: int = 4
    sfu_latency: int = 8
    global_mem_latency: int = 120
    shared_mem_latency: int = 24

    # ----- simulation fast path ----------------------------------------
    #: Event-driven cycle skipping: when every busy SM reports a tick
    #: with no pipeline progress, the run loop fast-forwards to the
    #: earliest pending event (execution latency, write-ready, operand
    #: ready, branch resolution) instead of ticking idle cycles one by
    #: one.  Results are bit-identical to cycle-by-cycle execution (see
    #: :mod:`repro.verify.fastpath`); disable only to cross-check.
    #: Ignored (treated as off) at ``verify_level`` 2, whose contract is
    #: an exhaustive scan of every simulated cycle.
    fast_path: bool = True

    #: Cross-warp batched execution: straight-line kernel regions are
    #: pre-evaluated as stacked ``(n_warps, 32)`` array programs, with
    #: co-resident warps parked at the same region head dispatched as
    #: one same-opcode group (see :mod:`repro.gpu.batch`).  Issue-time
    #: semantics, cycles, stats, energy, gating, and timelines are
    #: bit-identical to the per-warp path — the contract is enforced by
    #: :func:`repro.verify.fastpath.verify_launch_batched`.  Ignored
    #: (treated as off) when a register file cache is configured
    #: (``rfc_entries_per_warp > 0``) and at ``verify_level`` 2.
    batched: bool = True

    # ----- observability -----------------------------------------------
    #: Interval-sampler period in cycles (:mod:`repro.obs`): every N
    #: cycles each SM snapshots its metric registry into the run's
    #: :class:`~repro.obs.timeline.Timeline`.  0 disables sampling, and
    #: with it the registry itself (instrumented components receive
    #: no-op null instruments, keeping the cycle loop overhead-free).
    sample_interval: int = 0

    # ----- verification ------------------------------------------------
    #: Runtime self-check intensity (see :mod:`repro.verify.invariants`):
    #: 0 = off, 1 = cheap O(1) event checks + end-of-run conservation
    #: totals (default), 2 = exhaustive per-cycle state scans plus a
    #: codec-vs-BDI cross-check on every committed register write.
    verify_level: int = 1

    def __post_init__(self) -> None:
        if self.sample_interval < 0:
            raise ValueError(
                f"sample_interval must be non-negative, got "
                f"{self.sample_interval}"
            )
        if self.verify_level not in (0, 1, 2):
            raise ValueError(
                f"verify_level must be 0, 1 or 2, got {self.verify_level}"
            )
        if self.scheduler_policy not in ("gto", "lrr"):
            raise ValueError(
                f"scheduler_policy must be 'gto' or 'lrr', got "
                f"{self.scheduler_policy!r}"
            )
        if self.num_banks % BANKS_PER_WARP_REGISTER != 0:
            raise ValueError(
                f"num_banks ({self.num_banks}) must be a multiple of "
                f"{BANKS_PER_WARP_REGISTER} (one warp register per cluster)"
            )
        expected = self.num_banks * self.bank_bytes * self.entries_per_bank
        if expected != self.register_file_bytes:
            raise ValueError(
                f"register file geometry inconsistent: {self.num_banks} banks "
                f"x {self.bank_bytes} B x {self.entries_per_bank} entries = "
                f"{expected} B != {self.register_file_bytes} B"
            )

    # ----- derived geometry -------------------------------------------
    @property
    def banks_per_cluster(self) -> int:
        """Banks spanned by one uncompressed warp register."""
        return BANKS_PER_WARP_REGISTER

    @property
    def num_clusters(self) -> int:
        """Independent eight-bank clusters (4 with Table 2 geometry)."""
        return self.num_banks // self.banks_per_cluster

    @property
    def warp_register_slots(self) -> int:
        """Total warp-register slots in the register file (1024 default)."""
        return self.num_clusters * self.entries_per_bank

    @property
    def thread_registers_per_sm(self) -> int:
        """Table 2's "Max. Registers / SM" (32768 default)."""
        return self.warp_register_slots * self.warp_size

    def max_resident_warps(self, regs_per_thread: int, cta_warps: int) -> int:
        """Occupancy limit for a kernel needing ``regs_per_thread`` registers.

        Bounded by the scheduler warp limit, the thread limit, and the
        register file capacity; rounded down to whole CTAs.
        """
        if regs_per_thread <= 0:
            raise ValueError("kernels must use at least one register")
        by_regs = self.warp_register_slots // regs_per_thread
        by_threads = self.max_threads_per_sm // self.warp_size
        limit = min(self.max_warps_per_sm, by_threads, by_regs)
        return (limit // cta_warps) * cta_warps

    def with_overrides(self, **kwargs) -> "GPUConfig":
        """A modified copy — convenience for design-space sweeps."""
        return replace(self, **kwargs)

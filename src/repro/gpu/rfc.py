"""Register file cache (extension beyond the paper).

The paper positions register compression as *orthogonal* to the register
file cache of Gebhart et al. (ISCA 2011), the main prior approach to RF
dynamic power.  This module implements a small per-warp write-allocate
RFC so the claim can be measured: reads that hit the cache skip the
banks entirely; results are written to the cache and only reach the
banks on eviction — at which point the full 32-lane value is present, so
evictions compress without the divergence complications of Section 5.2.

Modelled faithfully for energy (cache accesses, eviction writebacks,
fills for partially-written allocations) and approximately for timing
(eviction writebacks are treated as buffered, off the critical path).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class RegisterFileCache:
    """Per-warp LRU cache of recently written registers.

    ``entries_per_warp`` follows Gebhart et al.'s six-entry design.
    Entries are allocated on writes (write-allocate, write-back); reads
    refresh LRU order but never allocate.
    """

    entries_per_warp: int = 6
    read_hits: int = field(default=0, init=False)
    read_misses: int = field(default=0, init=False)
    writes: int = field(default=0, init=False)
    evictions: int = field(default=0, init=False)
    _lines: dict[int, OrderedDict[int, bool]] = field(
        default_factory=dict, init=False
    )

    def __post_init__(self) -> None:
        if self.entries_per_warp <= 0:
            raise ValueError(
                f"cache needs at least one entry, got {self.entries_per_warp}"
            )

    def _warp(self, warp_slot: int) -> OrderedDict[int, bool]:
        return self._lines.setdefault(warp_slot, OrderedDict())

    def read(self, warp_slot: int, reg: int) -> bool:
        """Look up a source operand; True = hit (no bank access needed)."""
        lines = self._warp(warp_slot)
        if reg in lines:
            lines.move_to_end(reg)
            self.read_hits += 1
            return True
        self.read_misses += 1
        return False

    def contains(self, warp_slot: int, reg: int) -> bool:
        return reg in self._warp(warp_slot)

    def write(self, warp_slot: int, reg: int) -> int | None:
        """Allocate/update ``reg``; returns an evicted register or None.

        The evicted register is always dirty (every cached line was put
        there by a write) and must be written back to the banks.
        """
        lines = self._warp(warp_slot)
        self.writes += 1
        if reg in lines:
            lines.move_to_end(reg)
            return None
        evicted = None
        if len(lines) >= self.entries_per_warp:
            evicted, _ = lines.popitem(last=False)
            self.evictions += 1
        lines[reg] = True
        return evicted

    def flush_warp(self, warp_slot: int) -> list[int]:
        """Drop all of a retiring warp's lines; returns dirty registers."""
        lines = self._lines.pop(warp_slot, OrderedDict())
        dirty = list(lines)
        self.evictions += len(dirty)
        return dirty

    @property
    def accesses(self) -> int:
        """Total cache-array accesses (for the energy model)."""
        return self.read_hits + self.writes

    @property
    def hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

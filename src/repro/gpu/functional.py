"""Functional (timing-free) kernel execution.

Runs warps round-robin to completion, applying register writes
immediately.  Used for kernel correctness tests (outputs compared against
reference CPU implementations) and for the characterisation figures that
need only value statistics (Figures 2, 3, 5): it is roughly an order of
magnitude faster than the cycle-level model.

Compression *state* is still tracked (each register's would-be storage
mode under the supplied policy), so divergence-handling statistics such as
dummy-MOV counts and compressed-register occupancy can also be produced
functionally.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.analysis.stats import RunStats, ValueStats
from repro.core.codec import CompressionMode, choose_mode
from repro.core.policy import CompressionPolicy, make_policy
from repro.gpu.interpreter import Interpreter, WarpContext, make_warp_context
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.program import Kernel
from repro.gpu.simt import popcount

_MAX_STEPS = 50_000_000


class FunctionalRunner:
    """Executes a launch functionally while modelling compression state."""

    def __init__(
        self,
        policy: str | CompressionPolicy = "warped",
        collect_bdi: bool = False,
        warp_size: int = 32,
    ):
        self.policy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.collect_bdi = collect_bdi
        self.warp_size = warp_size
        self.interpreter = Interpreter(warp_size)

    def run(
        self,
        kernel: Kernel,
        grid_dim: tuple[int, int],
        cta_dim: tuple[int, int],
        params: list[int],
        gmem: GlobalMemory,
    ) -> RunStats:
        stats = ValueStats(collect_bdi=self.collect_bdi)
        params_arr = np.asarray(
            [int(p) & 0xFFFFFFFF for p in params], dtype=np.uint32
        )
        cta_threads = cta_dim[0] * cta_dim[1]
        warps_per_cta = -(-cta_threads // self.warp_size)
        num_ctas = grid_dim[0] * grid_dim[1]

        steps = 0
        # The interpreter's float handlers carry no errstate of their own
        # (see interpreter.py); hold one scope for the whole launch.
        with np.errstate(all="ignore"):
            for cta_id in range(num_ctas):
                shared = SharedMemory(kernel.shared_bytes)
                warps = [
                    make_warp_context(
                        kernel=kernel,
                        warp_id=cta_id * warps_per_cta + w,
                        cta_id=cta_id,
                        cta_dim=cta_dim,
                        grid_dim=grid_dim,
                        warp_in_cta=w,
                        params=params_arr,
                        gmem=gmem,
                        shared=shared,
                        warp_size=self.warp_size,
                    )
                    for w in range(warps_per_cta)
                ]
                # Per-register storage mode under the policy (for MOV and
                # occupancy accounting).
                modes = {
                    ctx.warp_id: [CompressionMode.UNCOMPRESSED]
                    * kernel.num_registers
                    for ctx in warps
                }
                allocated = warps_per_cta * kernel.num_registers
                steps = self._run_cta(warps, modes, allocated, stats, steps)
        return RunStats(
            benchmark=kernel.name, policy=self.policy.name, value=stats
        )

    def _run_cta(
        self,
        warps: list[WarpContext],
        modes: dict[int, list[CompressionMode]],
        allocated: int,
        stats: ValueStats,
        steps: int,
    ) -> int:
        """Run one CTA's warps round-robin, respecting barriers."""
        compressed = 0
        pending = deque(warps)
        while pending:
            progressed = False
            for _ in range(len(pending)):
                ctx = pending.popleft()
                if ctx.done:
                    progressed = True
                    continue
                if ctx.at_barrier:
                    pending.append(ctx)
                    continue
                compressed, steps, hit_barrier = self._run_warp(
                    ctx, modes[ctx.warp_id], allocated, compressed, stats, steps
                )
                progressed = True
                if not ctx.done:
                    pending.append(ctx)
            if pending and not progressed:
                live = [c for c in pending if not c.done]
                if live and all(c.at_barrier for c in live):
                    for c in live:
                        c.at_barrier = False
                elif live:
                    raise RuntimeError(
                        "functional runner deadlock: warps blocked"
                    )
        return steps

    def _run_warp(
        self,
        ctx: WarpContext,
        warp_modes: list[CompressionMode],
        allocated: int,
        compressed: int,
        stats: ValueStats,
        steps: int,
    ) -> tuple[int, int, bool]:
        """Execute ``ctx`` until it finishes or reaches a barrier."""
        interp = self.interpreter
        policy = self.policy
        while not ctx.done:
            steps += 1
            if steps > _MAX_STEPS:
                raise RuntimeError("functional execution exceeded step limit")
            result = interp.execute(ctx)
            if result is None:
                break
            stats.record_instruction(result.base_divergent)
            stats.record_occupancy(
                compressed / allocated if allocated else 0.0,
                result.base_divergent,
            )
            if result.is_barrier:
                ctx.at_barrier = True
                return compressed, steps, True
            if result.dst is None:
                continue
            # Dummy-MOV bookkeeping: first divergent update to a
            # compressed destination decompresses it in place.
            if (
                policy.requires_mov_on_divergent_write
                and result.divergent
                and warp_modes[result.dst].is_compressed
            ):
                stats.record_mov()
                compressed -= 1
                warp_modes[result.dst] = CompressionMode.UNCOMPRESSED
            decision = policy.decide(result.values, result.divergent)
            old = warp_modes[result.dst]
            warp_modes[result.dst] = decision.mode
            compressed += int(decision.mode.is_compressed) - int(
                old.is_compressed
            )
            stats.record_write(
                result.values,
                result.divergent,
                achievable_mode=choose_mode(result.values),
                stored_banks=decision.banks,
                stored_mode=decision.mode,
            )
            interp.apply(ctx, result)
        return compressed, steps, False


def run_functional(
    kernel: Kernel,
    grid_dim: tuple[int, int],
    cta_dim: tuple[int, int],
    params: list[int],
    gmem: GlobalMemory,
    policy: str = "warped",
    collect_bdi: bool = False,
) -> RunStats:
    """One-shot functional run (correctness tests, characterisation)."""
    runner = FunctionalRunner(policy=policy, collect_bdi=collect_bdi)
    return runner.run(kernel, grid_dim, cta_dim, params, gmem)

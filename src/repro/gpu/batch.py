"""Cross-warp batched execution over straight-line kernel regions.

The SM issues one instruction per scheduler per cycle, but the *values*
every issue computes are pure array math — and co-resident warps spend
most of their lives marching through the same straight-line stretches of
the kernel.  This module exploits that regularity:

* :func:`compute_regions` pre-analyses a kernel once and finds every
  *fusible region*: a maximal run of consecutive instructions containing
  no control flow, no memory loads/stores, and no interior branch entry
  point (branch targets, reconvergence points and fall-through pcs all
  terminate a region, so a warp replaying one can never reconverge or
  settle mid-region).  Every suffix of a run is itself a region, so a
  warp entering the run late still finds a region head at its pc.
* :func:`evaluate_region` takes a *group* of warps parked at the same
  region head and pre-executes the whole region for all of them at once:
  each instruction becomes one numpy dispatch over a stacked
  ``(n_warps, warp_size)`` uint32 matrix (through the batched entry
  points :func:`repro.gpu.interpreter.compute_vector_batch` /
  :func:`~repro.gpu.interpreter.compare_vector_batch`), masked writeback
  is a single ``np.where`` over the stacked rows, and the per-write
  compression decisions and characterisation profiles are produced
  through the same content-keyed memo caches the per-warp path uses
  (``policy.decide_many``, :func:`repro.core.codec.choose_mode`, the
  ``PROFILE_CACHE`` probe) — register images recur constantly, so the
  memoized probes beat recomputation even for large groups.

The result is a per-warp queue of :class:`QueuedOp` entries.  The SM
*replays* the queue through its normal issue machinery — scoreboard
checks, collector allocation, latencies, bank arbitration and dummy-MOV
injection all still happen live, cycle by cycle — so the batched path is
a value-precomputation layer only, and every architecturally visible
outcome (cycles, stats, energy, gating, timelines) is bit-identical to
the per-warp path.  The safety argument (why a gathered warp's operands
are frozen for the whole region) lives in DESIGN.md §9 and is enforced
end-to-end by :func:`repro.verify.fastpath.verify_launch_batched`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.analysis.similarity import classify_write, classify_write_full
from repro.core.codec import choose_mode
from repro.core.memo import PROFILE_CACHE
from repro.gpu.interpreter import (
    _COMPUTE_DISPATCH,
    ExecResult,
    compare_vector_batch,
    compute_vector_batch,
)
from repro.gpu.isa import Instruction, Op, OpClass, Reg, op_class
from repro.gpu.program import Kernel

#: Opcodes a region may contain: every pure-compute opcode the
#: interpreter dispatches, minus memory loads (their values depend on
#: stores other warps may perform mid-region), plus the predicate
#: setters (their outcome is a pure function of frozen operands).
#: Control flow (BRA/BAR/EXIT/NOP) and stores are never fusible.
FUSIBLE_OPS = frozenset(
    (set(_COMPUTE_DISPATCH) - {Op.LDG, Op.LDS}) | {Op.ISETP, Op.FSETP}
)

# Step evaluation kinds (see _make_step): anything not special-cased
# routes through compute_vector_batch.
_K_VECTOR, _K_SETP, _K_MOV, _K_S2R, _K_PARAM, _K_SEL = range(6)

_STEP_KINDS = {
    Op.ISETP: _K_SETP,
    Op.FSETP: _K_SETP,
    Op.MOV: _K_MOV,
    Op.S2R: _K_S2R,
    Op.PARAM: _K_PARAM,
    Op.SEL: _K_SEL,
}

#: Per-lane bit weights for packing boolean mask rows into int bitmasks.
_POW2 = (np.uint64(1) << np.arange(64, dtype=np.uint64))

#: Frozen broadcast rows keyed ``(value, warp_size)`` — the evaluator's
#: analogue of the interpreter's immediate-operand cache.
_ROW_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _broadcast_row(value: int, warp_size: int) -> np.ndarray:
    key = (value & 0xFFFFFFFF, warp_size)
    row = _ROW_CACHE.get(key)
    if row is None:
        row = np.full(warp_size, key[0], dtype=np.uint32)
        row.setflags(write=False)
        _ROW_CACHE[key] = row
    return row


def _mask_row(mask: int, warp_size: int) -> np.ndarray:
    """Expand an int bitmask into a per-lane boolean row (fresh array)."""
    return (
        (np.uint64(mask) >> np.arange(warp_size, dtype=np.uint64))
        & np.uint64(1)
    ).astype(bool)


@dataclass(frozen=True)
class Step:
    """One region instruction with its evaluation plan precomputed."""

    instr: Instruction
    pc: int
    kind: int
    op_class: OpClass
    src_regs: tuple[int, ...]
    dst: int | None
    pred_dst: int | None
    guard_index: int | None
    guard_negated: bool


@dataclass(frozen=True)
class Region:
    """A straight-line fusible run starting at ``head``.

    ``live_in_full`` / ``live_in_div`` are the registers whose values the
    region reads before (fully) writing them — the region's inputs.  A
    warp may batch while it still has in-flight register writes as long
    as none of them target a live-in register: everything else the warp's
    pipeline commits mid-replay is either overwritten by the region
    before any use or never read at all.  The ``div`` variant assumes a
    partial base mask, under which *every* write merges with (i.e. reads)
    its destination; the ``full`` variant only treats guarded writes
    that way.  Predicates never appear: predicate values are written at
    issue, so a pending predicate is already current when gathered.
    """

    head: int
    steps: tuple[Step, ...]
    live_in_full: frozenset[int]
    live_in_div: frozenset[int]

    def __len__(self) -> int:
        return len(self.steps)


class QueuedOp:
    """One pre-executed instruction parked in a warp's region queue.

    ``peek`` is exactly the tuple :meth:`Interpreter.peek` would return
    for the warp at this point (instruction, execution mask, pc), so the
    SM's readiness checks run unchanged against it.  ``result`` is the
    finished :class:`ExecResult`; ``decision`` / ``achievable_banks`` /
    ``sim_bin`` carry the pre-batched writeback work (``sim_bin`` is -1
    when the commit must fall back to the per-write profile path, e.g.
    for BDI-collection runs).
    """

    __slots__ = (
        "peek",
        "result",
        "decision",
        "achievable_banks",
        "sim_bin",
        "pred_index",
        "pred_row",
    )

    def __init__(self, peek, result, decision, achievable_banks, sim_bin,
                 pred_index, pred_row):
        self.peek = peek
        self.result = result
        self.decision = decision
        self.achievable_banks = achievable_banks
        self.sim_bin = sim_bin
        self.pred_index = pred_index
        self.pred_row = pred_row


class BatchStats:
    """Process-wide batching counters (serve metrics, bench reports).

    The SM's own registry-backed ``sm.batch_size`` histogram only exists
    when interval sampling is on; these module-level counters are always
    live so the serve path and the bench breakdown can report batching
    behaviour without paying for a per-SM registry.
    """

    __slots__ = ("groups", "grouped_warps", "batched_ops", "singleton_groups")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.groups = 0
        self.grouped_warps = 0
        self.batched_ops = 0
        self.singleton_groups = 0

    def record(self, group_size: int, ops: int) -> None:
        self.groups += 1
        self.grouped_warps += group_size
        self.batched_ops += ops
        if group_size == 1:
            self.singleton_groups += 1

    @property
    def mean_group_size(self) -> float:
        return self.grouped_warps / self.groups if self.groups else 0.0

    def snapshot(self) -> dict:
        return {
            "groups": self.groups,
            "grouped_warps": self.grouped_warps,
            "batched_ops": self.batched_ops,
            "singleton_groups": self.singleton_groups,
            "mean_group_size": self.mean_group_size,
        }


#: Process-global batching accounting, reset-free by design: consumers
#: (the serve ``/v1/metrics`` endpoint, bench reference blocks) read
#: deltas or snapshots.
BATCH_STATS = BatchStats()


def _exec_meta(instr: Instruction) -> tuple[OpClass, tuple[int, ...]]:
    # Same per-instruction memo the interpreter uses (shared attribute,
    # so whichever path touches an instruction first pays the cost once).
    meta = instr.__dict__.get("_exec_meta")
    if meta is None:
        meta = (op_class(instr.op), instr.source_registers())
        object.__setattr__(instr, "_exec_meta", meta)
    return meta


def _make_step(instr: Instruction, pc: int) -> Step:
    klass, src_regs = _exec_meta(instr)
    guard = instr.guard
    return Step(
        instr=instr,
        pc=pc,
        kind=_STEP_KINDS.get(instr.op, _K_VECTOR),
        op_class=klass,
        src_regs=src_regs,
        dst=instr.dst.index if instr.dst is not None else None,
        pred_dst=instr.pred_dst.index if instr.pred_dst is not None else None,
        guard_index=guard.index if guard is not None else None,
        guard_negated=guard.negated if guard is not None else False,
    )


def _live_in(steps: tuple[Step, ...], assume_partial_writes: bool) -> frozenset[int]:
    """Registers whose pre-region values ``steps`` can read.

    A source register is live-in until the region writes it.  A write's
    *destination* also counts as a read on first access when the merge
    keeps stale lanes — always under a partial base mask
    (``assume_partial_writes``), otherwise only for guarded writes.
    """
    live: set[int] = set()
    written: set[int] = set()
    for st in steps:
        for r in st.src_regs:
            if r not in written:
                live.add(r)
        dst = st.dst
        if dst is not None:
            if dst not in written and (
                assume_partial_writes or st.guard_index is not None
            ):
                live.add(dst)
            written.add(dst)
    return frozenset(live)


def compute_regions(kernel: Kernel) -> dict[int, Region]:
    """Region table of a kernel: head pc → :class:`Region`.

    Maximal fusible runs are split at *entry points* — pc 0, branch
    targets, reconvergence pcs and branch fall-throughs — so no region
    interior can ever be jumped into or reconverged at; a warp replaying
    a region therefore never settles its SIMT stack mid-region.  Within
    each split segment every start with at least two remaining
    instructions gets its own (suffix) region, so warps arriving at any
    offset of the run can still batch.  Cached on the kernel object.
    """
    cached = kernel.__dict__.get("_batch_regions")
    if cached is not None:
        return cached
    instrs = kernel.instructions
    entries = {0}
    for pc, ins in enumerate(instrs):
        if ins.op is Op.BRA:
            entries.add(ins.target)
            entries.add(ins.reconv)
            entries.add(pc + 1)
    regions: dict[int, Region] = {}
    n = len(instrs)
    start: int | None = None
    for pc in range(n + 1):
        fusible = pc < n and instrs[pc].op in FUSIBLE_OPS
        if start is not None and (not fusible or pc in entries):
            if pc - start >= 2:
                steps = tuple(
                    _make_step(instrs[p], p) for p in range(start, pc)
                )
                for s in range(start, pc - 1):
                    suffix = steps[s - start :]
                    regions[s] = Region(
                        head=s,
                        steps=suffix,
                        live_in_full=_live_in(suffix, False),
                        live_in_div=_live_in(suffix, True),
                    )
            start = None
        if fusible and start is None:
            start = pc
    kernel.__dict__["_batch_regions"] = regions
    return regions


def evaluate_region(
    region: Region,
    ctxs: list,
    entries: list[int],
    policy,
    warp_size: int,
    collect_bdi: bool,
) -> list[deque]:
    """Pre-execute ``region`` for a group of warps parked inside it.

    ``ctxs`` are the group's :class:`~repro.gpu.interpreter.WarpContext`
    objects in issue-replay order; ``entries[i]`` is warp *i*'s offset
    into ``region.steps`` (0 for a warp at the head, larger for warps
    that already progressed into the run — the region is the longest
    common suffix, so late entrants simply skip the steps before their
    own pc).  Caller guarantees every warp's pc is
    ``region.head + entries[i]``, its SIMT stack is settled, and none of
    its pending in-flight register writes target its own suffix's
    live-in set — which together freeze all operands that warp's steps
    can read for the whole replay window (in-flight writes to
    non-live-in registers may land mid-replay, but the suffix either
    overwrites those registers before reading them or never reads them
    at all; pending *predicate* writes are harmless because predicate
    values land at issue and are already current here).  Rows are
    evaluated independently — a step touches only the rows whose entry
    offset covers it, so group membership never changes any warp's
    values.

    Returns one queue of :class:`QueuedOp` per warp, aligned with
    ``ctxs``.  Every queued value, mask, predicate row, compression
    decision and similarity bin is bit-identical to what the per-warp
    path would produce at the (later) cycles the SM replays them.
    """
    g = len(ctxs)
    full_mask = (1 << warp_size) - 1
    pow2 = _POW2[:warp_size]
    max_entry = max(entries)
    all_rows = list(range(g))

    base_masks = [ctx.stack.active_mask for ctx in ctxs]
    base_bool = np.empty((g, warp_size), dtype=bool)
    for i, m in enumerate(base_masks):
        base_bool[i] = _mask_row(m, warp_size)
    base_divs = [m != full_mask for m in base_masks]
    all_base_full = not any(base_divs)

    # Copy-on-read snapshots + copy-on-write overlays.  Register and
    # predicate rows are stacked from the contexts the first time an
    # instruction reads them; region writes replace whole (g, warp_size)
    # matrices, so snapshots are never mutated and intra-region RAW
    # chains read exactly the values the earlier write produced.
    reg_rows_cache: dict[int, np.ndarray] = {}
    pred_rows_cache: dict[int, np.ndarray] = {}

    def reg_rows(idx: int) -> np.ndarray:
        rows = reg_rows_cache.get(idx)
        if rows is None:
            rows = np.stack([ctx.registers[idx] for ctx in ctxs])
            reg_rows_cache[idx] = rows
        return rows

    def pred_rows(idx: int) -> np.ndarray:
        rows = pred_rows_cache.get(idx)
        if rows is None:
            rows = np.stack([ctx.preds[idx] for ctx in ctxs])
            pred_rows_cache[idx] = rows
        return rows

    def operand_rows(operand) -> np.ndarray:
        if type(operand) is Reg:
            return reg_rows(operand.index)
        return np.broadcast_to(
            _broadcast_row(operand.u32, warp_size), (g, warp_size)
        )

    queues: list[deque] = [deque() for _ in range(g)]

    with np.errstate(all="ignore"):
        for j, step in enumerate(region.steps):
            instr = step.instr
            # Rows whose entry offset covers this step.  A row that has
            # not entered yet is simply masked out: its merged values
            # stay the snapshot, and it emits no QueuedOp.
            if j >= max_entry:
                act_idx = all_rows
                act_bool = base_bool
                act_full = True
            else:
                act_idx = [i for i in all_rows if entries[i] <= j]
                act_bool = base_bool & np.fromiter(
                    (e <= j for e in entries), dtype=bool, count=g
                ).reshape(g, 1)
                act_full = False
            if step.guard_index is None:
                exec_bool = act_bool
                if act_full:
                    exec_masks = base_masks
                    all_full = all_base_full
                else:
                    exec_masks = [
                        base_masks[i] if entries[i] <= j else 0
                        for i in all_rows
                    ]
                    all_full = False
            else:
                bits = pred_rows(step.guard_index)
                if step.guard_negated:
                    bits = ~bits
                exec_bool = act_bool & bits
                exec_masks = [
                    int(x)
                    for x in (exec_bool * pow2).sum(axis=1).tolist()
                ]
                all_full = act_full and all(
                    m == full_mask for m in exec_masks
                )

            kind = step.kind
            if kind == _K_SETP:
                a = operand_rows(instr.srcs[0])
                b = operand_rows(instr.srcs[1])
                outcome = compare_vector_batch(
                    instr.cmp, a, b, as_float=instr.op is Op.FSETP
                )
                pidx = step.pred_dst
                merged_pred = np.where(exec_bool, outcome, pred_rows(pidx))
                pred_rows_cache[pidx] = merged_pred
                for i in act_idx:
                    em = exec_masks[i]
                    result = ExecResult(
                        instr=instr,
                        pc=step.pc,
                        exec_mask=em,
                        base_mask=base_masks[i],
                        divergent=em != full_mask,
                        base_divergent=base_divs[i],
                        op_class=step.op_class,
                        src_regs=step.src_regs,
                    )
                    queues[i].append(
                        QueuedOp(
                            (instr, em, step.pc),
                            result,
                            None,
                            0,
                            -1,
                            pidx,
                            merged_pred[i],
                        )
                    )
                continue

            if kind == _K_VECTOR:
                computed = compute_vector_batch(
                    instr.op, *(operand_rows(s) for s in instr.srcs)
                )
            elif kind == _K_MOV:
                computed = operand_rows(instr.srcs[0])
            elif kind == _K_S2R:
                computed = np.stack([ctx.sregs[instr.sreg] for ctx in ctxs])
            elif kind == _K_PARAM:
                # Launch parameters are shared by every warp of a launch.
                computed = np.broadcast_to(
                    _broadcast_row(
                        int(ctxs[0].params[instr.param_index]), warp_size
                    ),
                    (g, warp_size),
                )
            else:  # _K_SEL
                pbits = pred_rows(instr.pred_src.index)
                if instr.pred_src.negated:
                    pbits = ~pbits
                computed = np.where(
                    pbits,
                    operand_rows(instr.srcs[0]),
                    operand_rows(instr.srcs[1]),
                ).astype(np.uint32)

            dst = step.dst
            if all_full:
                merged = computed
            else:
                merged = np.where(exec_bool, computed, reg_rows(dst))
            reg_rows_cache[dst] = merged

            act_divs = (
                [False] * len(act_idx)
                if all_full
                else [exec_masks[i] != full_mask for i in act_idx]
            )
            decisions = policy.decide_many(
                merged if act_full else merged[act_idx],
                np.asarray(act_divs, dtype=bool),
            )
            if collect_bdi:
                # BDI-collection runs keep the per-write profile path at
                # commit (it owns the best-encoding histogram).
                ach_banks = None
                bins = None
            else:
                # Per-row memoized probes: register images recur across
                # writes, so the content-keyed caches (same ones the
                # per-warp path fills) beat a fresh vectorised pass.
                ach_banks = []
                bins = []
                cache = PROFILE_CACHE
                for i in act_idx:
                    row = merged[i]
                    ach_banks.append(choose_mode(row).banks)
                    if cache.enabled:
                        key = row.tobytes()
                        profile = cache.get(key)
                        if profile is None:
                            profile = [classify_write_full(row), None]
                            cache.put(key, profile)
                        bins.append(profile[0])
                    else:
                        bins.append(
                            classify_write(
                                row, np.ones(warp_size, dtype=bool)
                            )
                        )

            for k, i in enumerate(act_idx):
                em = exec_masks[i]
                result = ExecResult(
                    instr=instr,
                    pc=step.pc,
                    exec_mask=em,
                    base_mask=base_masks[i],
                    divergent=em != full_mask,
                    base_divergent=base_divs[i],
                    op_class=step.op_class,
                    dst=dst,
                    values=merged[i],
                    src_regs=step.src_regs,
                )
                queues[i].append(
                    QueuedOp(
                        (instr, em, step.pc),
                        result,
                        decisions[k],
                        ach_banks[k] if ach_banks is not None else 0,
                        bins[k] if bins is not None else -1,
                        -1,
                        None,
                    )
                )

    return queues


__all__ = [
    "BATCH_STATS",
    "FUSIBLE_OPS",
    "BatchStats",
    "QueuedOp",
    "Region",
    "Step",
    "compute_regions",
    "evaluate_region",
]

"""Warped-Compression (ISCA 2015) reproduction.

A register-compression study platform for GPUs: a cycle-level SIMT
simulator with a banked register file, the warped-compression BDI codec
and policies, an energy model, twelve benchmark kernels, and an experiment
harness regenerating every figure of the paper's evaluation.

Quickstart::

    from repro import run_kernel
    from repro.kernels import get_benchmark

    bench = get_benchmark("pathfinder")
    spec = bench.launch()
    result = run_kernel(
        spec.kernel, spec.grid_dim, spec.cta_dim, spec.params,
        spec.fresh_memory(), policy="warped",
    )
    print(result.stats.value.overall_compression_ratio())
"""

from repro.core import (
    CompressionMode,
    Encoding,
    WarpedCompressionPolicy,
    banks_required,
    best_encoding,
    choose_mode,
    make_policy,
)
from repro.gpu import GPU, GPUConfig, LaunchSpec, SimulationResult, run_kernel
from repro.gpu.builder import KernelBuilder
from repro.gpu.functional import run_functional
from repro.gpu.memory import GlobalMemory
from repro.power import EnergyParams

__version__ = "1.0.0"

__all__ = [
    "GPU",
    "GPUConfig",
    "GlobalMemory",
    "CompressionMode",
    "Encoding",
    "EnergyParams",
    "KernelBuilder",
    "LaunchSpec",
    "SimulationResult",
    "WarpedCompressionPolicy",
    "banks_required",
    "best_encoding",
    "choose_mode",
    "make_policy",
    "run_functional",
    "run_kernel",
]

"""Warped-Compression (ISCA 2015) reproduction.

A register-compression study platform for GPUs: a cycle-level SIMT
simulator with a banked register file, the warped-compression BDI codec
and policies, an energy model, twelve benchmark kernels, and an experiment
harness regenerating every figure of the paper's evaluation.

Quickstart::

    from repro import Session

    session = Session()  # memoized + on-disk cached simulation runs
    result = session.timing_run("pathfinder", policy="warped")
    print(result.value.overall_compression_ratio())

(`run_kernel` remains available for one-off launches of hand-built
kernels; experiments always go through a :class:`Session`.)
"""

from repro.core import (
    CompressionMode,
    Encoding,
    WarpedCompressionPolicy,
    banks_required,
    best_encoding,
    choose_mode,
    make_policy,
)
from repro.gpu import GPU, GPUConfig, LaunchSpec, SimulationResult, run_kernel
from repro.gpu.builder import KernelBuilder
from repro.gpu.functional import run_functional
from repro.gpu.memory import GlobalMemory
from repro.power import EnergyParams
from repro.sim import RunResult, Session, SimRequest

__version__ = "1.1.0"

__all__ = [
    "GPU",
    "GPUConfig",
    "GlobalMemory",
    "CompressionMode",
    "Encoding",
    "EnergyParams",
    "KernelBuilder",
    "LaunchSpec",
    "RunResult",
    "Session",
    "SimRequest",
    "SimulationResult",
    "WarpedCompressionPolicy",
    "banks_required",
    "best_encoding",
    "choose_mode",
    "make_policy",
    "run_functional",
    "run_kernel",
]

"""Generic base-delta-immediate (BDI) compression.

Implements the BDI algorithm of Pekhimenko et al. (PACT 2012) as used by
the paper (Section 4): the input is divided into fixed-size chunks, the
first chunk is the *base*, and every chunk is re-expressed as a signed
delta from the base.  If every delta fits in the (smaller) delta width the
block is compressible; the compressed length is given by paper eq. (1)::

    L_comp = L_base + L_delta * (L_input / L_base - 1)

This module is the exploratory, any-parameter implementation used for the
design-space study of Figure 5 (which ``<base, delta>`` pair wins most
often).  The performance-critical fixed-parameter codec lives in
:mod:`repro.core.codec`.

All chunk values are little-endian unsigned integers; deltas are computed
with wrap-around (modulo ``2**(8*base_size)``) arithmetic and interpreted
as signed two's-complement values of the delta width, exactly as a
hardware subtractor would produce them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.banks import BANK_BYTES, banks_required


@dataclass(frozen=True, order=True)
class Encoding:
    """A ``<base_size, delta_size>`` BDI parameter pair, sizes in bytes.

    ``delta_size == 0`` is the special repeated-value encoding: every chunk
    must equal the base exactly (paper Table 1, the "zero bin" case).
    """

    base_size: int
    delta_size: int

    def __post_init__(self) -> None:
        if self.base_size not in (1, 2, 4, 8):
            raise ValueError(f"unsupported base size {self.base_size}")
        if not 0 <= self.delta_size < self.base_size:
            raise ValueError(
                f"delta size {self.delta_size} must be in [0, {self.base_size})"
            )

    def compressed_size(self, input_size: int) -> int:
        """Compressed length in bytes for an ``input_size``-byte block."""
        return compressed_size(input_size, self.base_size, self.delta_size)

    def banks(self, input_size: int = 128, bank_bytes: int = BANK_BYTES) -> int:
        """Register banks needed for the compressed block (Table 1)."""
        return banks_required(self.compressed_size(input_size), bank_bytes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.base_size},{self.delta_size}>"


def compressed_size(input_size: int, base_size: int, delta_size: int) -> int:
    """Paper equation (1): static compressed length of a BDI block."""
    if input_size % base_size != 0:
        raise ValueError(
            f"input size {input_size} is not a multiple of base size {base_size}"
        )
    nchunks = input_size // base_size
    return base_size + delta_size * (nchunks - 1)


#: Every ``<base, delta>`` row of paper Table 1, in table order.
TABLE1_ENCODINGS: tuple[Encoding, ...] = (
    Encoding(1, 0),
    Encoding(2, 1),
    Encoding(4, 0),
    Encoding(4, 1),
    Encoding(4, 2),
    Encoding(8, 0),
    Encoding(8, 1),
    Encoding(8, 2),
    Encoding(8, 4),
)

#: The parameter set explored by the paper's dynamic-selection study
#: (Section 4): base 4 or 8, all delta widths.
ALL_ENCODINGS: tuple[Encoding, ...] = (
    Encoding(4, 0),
    Encoding(4, 1),
    Encoding(4, 2),
    Encoding(8, 0),
    Encoding(8, 1),
    Encoding(8, 2),
    Encoding(8, 4),
)

#: The three fixed choices warped-compression keeps (Section 4, Figure 5).
WARPED_ENCODINGS: tuple[Encoding, ...] = (
    Encoding(4, 0),
    Encoding(4, 1),
    Encoding(4, 2),
)


@dataclass(frozen=True)
class BDIBlock:
    """A compressed BDI block: encoding, base chunk value, signed deltas."""

    encoding: Encoding
    input_size: int
    base: int
    deltas: tuple[int, ...]

    @property
    def size(self) -> int:
        """Compressed size in bytes."""
        return self.encoding.compressed_size(self.input_size)


#: (unsigned, signed) little-endian numpy dtypes per chunk size.  The
#: unsigned subtraction wraps modulo ``2**(8*size)`` and the signed view
#: reinterprets the result as two's complement — exactly the hardware
#: subtractor semantics the scalar reference (`_signed_delta`) defines.
_CHUNK_DTYPES = {
    1: (np.dtype("<u1"), np.dtype("<i1")),
    2: (np.dtype("<u2"), np.dtype("<i2")),
    4: (np.dtype("<u4"), np.dtype("<i4")),
    8: (np.dtype("<u8"), np.dtype("<i8")),
}


def _chunk_array(data: bytes, size: int) -> np.ndarray:
    """All chunks of ``data`` as one little-endian unsigned vector."""
    if len(data) % size != 0:
        raise ValueError(
            f"data length {len(data)} is not a multiple of chunk size {size}"
        )
    return np.frombuffer(data, dtype=_CHUNK_DTYPES[size][0])


def _delta_array(data: bytes, size: int) -> np.ndarray:
    """Signed wrap-around deltas of every chunk to the first, one pass."""
    chunks = _chunk_array(data, size)
    return (chunks - chunks[0]).view(_CHUNK_DTYPES[size][1])


def _chunks(data: bytes, size: int) -> list[int]:
    """Scalar reference chunking (kept for tests and documentation)."""
    if len(data) % size != 0:
        raise ValueError(
            f"data length {len(data)} is not a multiple of chunk size {size}"
        )
    return [
        int.from_bytes(data[i : i + size], "little")
        for i in range(0, len(data), size)
    ]


def _signed_delta(chunk: int, base: int, base_size: int) -> int:
    """Wrap-around difference ``chunk - base`` as a signed base-width value."""
    mod = 1 << (8 * base_size)
    raw = (chunk - base) % mod
    if raw >= mod // 2:
        raw -= mod
    return raw


def _fits(delta: int, delta_size: int) -> bool:
    if delta_size == 0:
        return delta == 0
    bound = 1 << (8 * delta_size - 1)
    return -bound <= delta < bound


def _range_fits(low: int, high: int, delta_size: int) -> bool:
    """Whether every delta in ``[low, high]`` fits the delta width."""
    if delta_size == 0:
        return low == 0 and high == 0
    bound = 1 << (8 * delta_size - 1)
    return low >= -bound and high < bound


def can_encode(data: bytes, encoding: Encoding) -> bool:
    """Whether every chunk's delta to the first chunk fits the delta width."""
    deltas = _delta_array(data, encoding.base_size)
    return _range_fits(
        int(deltas.min()), int(deltas.max()), encoding.delta_size
    )


def encode(data: bytes, encoding: Encoding) -> BDIBlock:
    """Compress ``data`` with ``encoding``; raises if not compressible."""
    chunks = _chunk_array(data, encoding.base_size)
    deltas = (chunks - chunks[0]).view(
        _CHUNK_DTYPES[encoding.base_size][1]
    )
    if not _range_fits(
        int(deltas.min()), int(deltas.max()), encoding.delta_size
    ):
        bad = next(
            i
            for i, d in enumerate(deltas.tolist())
            if not _fits(d, encoding.delta_size)
        )
        raise ValueError(
            f"delta {int(deltas[bad])} does not fit {encoding} for chunk "
            f"{int(chunks[bad]):#x}"
        )
    return BDIBlock(
        encoding, len(data), int(chunks[0]), tuple(deltas[1:].tolist())
    )


def decode(block: BDIBlock) -> bytes:
    """Reconstruct the original bytes from a compressed block."""
    enc = block.encoding
    mod = 1 << (8 * enc.base_size)
    chunks = [block.base]
    chunks.extend((block.base + d) % mod for d in block.deltas)
    return b"".join(c.to_bytes(enc.base_size, "little") for c in chunks)


def to_bytes(block: BDIBlock) -> bytes:
    """Serialise the compressed payload (base then packed deltas).

    Used by tests to check the claimed compressed size is achievable with a
    real bit layout; the simulator itself only needs sizes.
    """
    enc = block.encoding
    out = bytearray(block.base.to_bytes(enc.base_size, "little"))
    mod = 1 << (8 * enc.delta_size) if enc.delta_size else 1
    for delta in block.deltas:
        if enc.delta_size:
            out += (delta % mod).to_bytes(enc.delta_size, "little")
    return bytes(out)


def from_bytes(payload: bytes, encoding: Encoding, input_size: int) -> BDIBlock:
    """Inverse of :func:`to_bytes`."""
    expected = encoding.compressed_size(input_size)
    if len(payload) != expected:
        raise ValueError(
            f"payload length {len(payload)} != expected {expected} for {encoding}"
        )
    base = int.from_bytes(payload[: encoding.base_size], "little")
    deltas = []
    if encoding.delta_size:
        span = 1 << (8 * encoding.delta_size)
        for i in range(encoding.base_size, len(payload), encoding.delta_size):
            raw = int.from_bytes(payload[i : i + encoding.delta_size], "little")
            deltas.append(raw - span if raw >= span // 2 else raw)
    else:
        deltas = [0] * (input_size // encoding.base_size - 1)
    return BDIBlock(encoding, input_size, base, tuple(deltas))


def best_encoding(
    data: bytes,
    candidates: Iterable[Encoding] = ALL_ENCODINGS,
    bank_bytes: int = BANK_BYTES,
) -> Encoding | None:
    """Select the candidate with the best bank-granularity compression.

    Mirrors the paper's design-space methodology: on every register write
    the exploratory BDI engine computes the compression ratio of each
    parameter pair and keeps the one that needs the fewest register banks.
    Ties are broken towards the smaller compressed byte size, then the
    simpler (smaller delta) encoding.  Returns ``None`` when no candidate
    compresses to fewer banks than the raw data.
    """
    raw_banks = banks_required(len(data), bank_bytes)
    best: Encoding | None = None
    best_key: tuple[int, int, int] | None = None
    ranges = _delta_ranges(data, candidates)
    for enc in candidates:
        span = ranges.get(enc.base_size)
        if span is None or not _range_fits(span[0], span[1], enc.delta_size):
            continue
        size = enc.compressed_size(len(data))
        key = (banks_required(size, bank_bytes), size, enc.delta_size)
        if key[0] >= raw_banks:
            continue
        if best_key is None or key < best_key:
            best, best_key = enc, key
    return best


def _delta_ranges(
    data: bytes, candidates: Iterable[Encoding]
) -> dict[int, tuple[int, int]]:
    """(min, max) signed delta per distinct candidate base size.

    One vectorised pass per base size answers the fit question for every
    delta width sharing that base — the all-candidates search touches the
    data at most four times instead of once per ``<base, delta>`` pair.
    """
    ranges: dict[int, tuple[int, int]] = {}
    for enc in candidates:
        size = enc.base_size
        if size in ranges or len(data) % size != 0:
            continue
        deltas = _delta_array(data, size)
        ranges[size] = (int(deltas.min()), int(deltas.max()))
    return ranges


def compressible_sizes(
    data: bytes, candidates: Sequence[Encoding] = ALL_ENCODINGS
) -> dict[Encoding, int]:
    """Map of every candidate that can encode ``data`` to its byte size."""
    ranges = _delta_ranges(data, candidates)
    return {
        enc: enc.compressed_size(len(data))
        for enc in candidates
        if enc.base_size in ranges
        and _range_fits(*ranges[enc.base_size], enc.delta_size)
    }

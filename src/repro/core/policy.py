"""Register-storage compression policies.

A policy decides, for every warp-register writeback, how the value is
stored: which compression mode, how many physical banks, and whether a
compressor unit activation must be charged.  The policies model the design
points the paper evaluates:

* :class:`WarpedCompressionPolicy` — the proposed scheme: dynamic choice
  among ``<4,0>/<4,1>/<4,2>``, divergent writes stored uncompressed
  (Section 5.2), a dummy MOV decompresses a compressed destination before
  its first divergent update.
* :class:`StaticBDIPolicy` — a single fixed parameter pair (Section 6.6
  design-space study; ``<4,0>`` alone is equivalent to scalarization).
* :class:`PerThreadNarrowPolicy` — the rejected alternative that shrinks
  the compression window to one thread register (Section 5.2): each lane
  is stored in 1/2/4 bytes by narrow-width detection, exploiting no
  inter-thread similarity.
* :class:`UncompressedPolicy` — the baseline register file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.banks import BANK_BYTES, BANKS_PER_WARP_REGISTER, banks_required
from repro.core.codec import (
    COMPRESSED_MODES,
    MODE_BANKS_BY_ID,
    MODES_BY_ID,
    CompressionMode,
    WarpRegisterCodec,
    choose_mode_ids,
)


@dataclass(frozen=True)
class CompressionDecision:
    """Outcome of a policy for one register writeback.

    ``banks`` may differ from ``mode.banks`` only for policies whose
    storage layout the 2-bit indicator cannot express exactly (the
    per-thread narrow-width design point); the register file tracks the
    physical bank count separately from the indicator.
    """

    mode: CompressionMode
    banks: int
    compressor_used: bool

    def __post_init__(self) -> None:
        if not 1 <= self.banks <= BANKS_PER_WARP_REGISTER:
            raise ValueError(f"banks must be in [1, 8], got {self.banks}")

    @property
    def is_compressed(self) -> bool:
        return self.banks < BANKS_PER_WARP_REGISTER


_UNCOMPRESSED_DECISION = CompressionDecision(
    CompressionMode.UNCOMPRESSED, BANKS_PER_WARP_REGISTER, compressor_used=False
)

#: Interned compressor-produced decisions, one per indicator id.  The
#: batched issue path materialises a :class:`CompressionDecision` per
#: write, and the outcome space is four points — sharing frozen
#: instances keeps the gather pass allocation-free.
_COMPRESSED_DECISIONS_BY_ID = tuple(
    CompressionDecision(mode, mode.banks, compressor_used=True)
    for mode in CompressionMode
)


class CompressionPolicy:
    """Base interface; subclasses implement :meth:`decide`."""

    #: Human-readable policy name used in reports.
    name = "base"

    #: Whether a divergent write to a compressed destination must be
    #: preceded by a decompressing dummy MOV (Section 5.2).
    requires_mov_on_divergent_write = False

    #: Whether the register file performs any compression at all.
    enabled = True

    #: Whether ``decision.banks`` always equals ``decision.mode.banks``,
    #: i.e. the 2-bit indicator describes the storage layout exactly.
    #: The verification layer skips indicator/bank-count cross-checks for
    #: policies where this is ``False`` (per-thread narrow-width storage).
    indicator_exact = True

    def decide(
        self, values: np.ndarray, divergent: bool
    ) -> CompressionDecision:
        """Choose the storage representation for one register write."""
        raise NotImplementedError

    def decide_batch(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`decide` over a ``(n, warp_size)`` lane matrix.

        Returns ``(mode_ids, banks)`` as per-row vectors — raw 2-bit
        indicator ids (``uint8``) and physical bank counts (``int64``).
        The base implementation loops over :meth:`decide`; vector
        policies override it with whole-matrix arithmetic.  Must produce
        exactly the per-row outcome of sequential :meth:`decide` calls,
        including side effects on activation counters.
        """
        n = int(matrix.shape[0])
        mode_ids = np.empty(n, dtype=np.uint8)
        banks = np.empty(n, dtype=np.int64)
        for i in range(n):
            decision = self.decide(matrix[i], bool(divergent[i]))
            mode_ids[i] = int(decision.mode)
            banks[i] = decision.banks
        return mode_ids, banks

    def decide_many(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> list[CompressionDecision]:
        """Batch :meth:`decide` into per-row decision *objects*.

        The cross-warp batched issue path (:mod:`repro.gpu.batch`) needs
        the full :class:`CompressionDecision` per write, not just the
        ``(mode_ids, banks)`` vectors of :meth:`decide_batch`.  Must be
        bit-identical per row to sequential :meth:`decide` calls,
        including side effects on activation counters.  The base
        implementation loops :meth:`decide` so wrappers that override it
        (e.g. the verification oracle's cross-checking policy) keep
        their per-decision behaviour.
        """
        return [
            self.decide(matrix[i], bool(divergent[i]))
            for i in range(int(matrix.shape[0]))
        ]

    def reset(self) -> None:
        """Clear any per-run counters."""


class UncompressedPolicy(CompressionPolicy):
    """Baseline: every register occupies all eight banks, always."""

    name = "uncompressed"
    enabled = False

    def decide(
        self, values: np.ndarray, divergent: bool
    ) -> CompressionDecision:
        return _UNCOMPRESSED_DECISION

    def decide_batch(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = int(matrix.shape[0])
        mode_ids = np.full(
            n, int(CompressionMode.UNCOMPRESSED), dtype=np.uint8
        )
        banks = np.full(n, BANKS_PER_WARP_REGISTER, dtype=np.int64)
        return mode_ids, banks

    def decide_many(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> list[CompressionDecision]:
        return [_UNCOMPRESSED_DECISION] * int(matrix.shape[0])


class WarpedCompressionPolicy(CompressionPolicy):
    """The paper's proposal (dynamic ``<4,0>/<4,1>/<4,2>`` selection).

    Parameters
    ----------
    modes:
        Allowed compressed modes (defaults to all three choices).
    compress_divergent:
        When ``True``, models the rejected buffered alternative of
        Section 5.2 that merges divergent writes into a temporary buffer
        and re-compresses; the SM model charges the extra read-modify-write
        traffic.  Default ``False`` = the paper's chosen design.
    """

    name = "warped-compression"
    requires_mov_on_divergent_write = True

    def __init__(
        self,
        modes: tuple[CompressionMode, ...] = COMPRESSED_MODES,
        compress_divergent: bool = False,
    ):
        self.codec = WarpRegisterCodec(modes)
        self.compress_divergent = compress_divergent
        if compress_divergent:
            # The buffered design never leaves a register uncompressed due
            # to divergence, so the dummy-MOV mechanism is unnecessary.
            self.requires_mov_on_divergent_write = False

    def decide(
        self, values: np.ndarray, divergent: bool
    ) -> CompressionDecision:
        if divergent and not self.compress_divergent:
            return _UNCOMPRESSED_DECISION
        mode = self.codec.compress(values)
        return CompressionDecision(mode, mode.banks, compressor_used=True)

    def decide_batch(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = int(matrix.shape[0])
        if self.compress_divergent:
            eligible = np.ones(n, dtype=bool)
        else:
            eligible = ~np.asarray(divergent, dtype=bool)
        mode_ids = np.full(
            n, int(CompressionMode.UNCOMPRESSED), dtype=np.uint8
        )
        count = int(eligible.sum())
        if count:
            mode_ids[eligible] = self.codec.map_mode_ids(
                choose_mode_ids(matrix[eligible])
            )
            self.codec.compressions += count
        banks = MODE_BANKS_BY_ID[mode_ids]
        return mode_ids, banks

    def decide_many(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> list[CompressionDecision]:
        n = int(matrix.shape[0])
        if n < 16:
            # Small groups: the per-row path probes the content-keyed
            # codec memo (register images recur constantly), which beats
            # the unmemoized vectorised classifier below.  Bit-identical
            # either way, including the compression counters.
            return [
                self.decide(matrix[i], bool(divergent[i])) for i in range(n)
            ]
        if self.compress_divergent:
            eligible = np.ones(n, dtype=bool)
        else:
            eligible = ~np.asarray(divergent, dtype=bool)
        decisions = [_UNCOMPRESSED_DECISION] * n
        count = int(eligible.sum())
        if count:
            stored = self.codec.map_mode_ids(
                choose_mode_ids(matrix[eligible])
            )
            self.codec.compressions += count
            interned = _COMPRESSED_DECISIONS_BY_ID
            for row, mode_id in zip(
                np.flatnonzero(eligible).tolist(), stored.tolist()
            ):
                decisions[row] = interned[mode_id]
        return decisions

    def reset(self) -> None:
        self.codec.reset_counters()


class StaticBDIPolicy(WarpedCompressionPolicy):
    """A single static ``<4,d>`` choice (Section 6.6).

    ``StaticBDIPolicy(CompressionMode.B4D0)`` is the scalarization-
    equivalent design point: only registers whose 32 lanes are identical
    compress, to a single bank.
    """

    def __init__(self, mode: CompressionMode):
        if not mode.is_compressed:
            raise ValueError("static policy requires a compressed mode")
        super().__init__(modes=(mode,))
        self.static_mode = mode
        self.name = {
            CompressionMode.B4D0: "static<4,0>",
            CompressionMode.B4D1: "static<4,1>",
            CompressionMode.B4D2: "static<4,2>",
        }[mode]


class PerThreadNarrowPolicy(CompressionPolicy):
    """Per-thread narrow-width storage (rejected design of Section 5.2).

    Each 4-byte thread register is stored in 1, 2 or 4 bytes depending on
    whether its value sign-extends from 8 or 16 bits.  The packed sizes of
    all 32 lanes are summed and rounded up to whole banks.  Because no
    inter-thread similarity is used, a warp of 32 distinct 32-bit values
    (e.g. large addresses) saves nothing even when lane-to-lane deltas are
    tiny — which is exactly why the paper rejects this window.

    Divergence is irrelevant to this policy (each lane is independent), so
    no dummy MOVs are needed; partial writes simply repack.
    """

    name = "per-thread-narrow"
    indicator_exact = False

    def decide(
        self, values: np.ndarray, divergent: bool
    ) -> CompressionDecision:
        lanes = np.asarray(values, dtype=np.uint32).astype(np.int64)
        signed = np.where(lanes >= 1 << 31, lanes - (1 << 32), lanes)
        nbytes = np.full(signed.shape, 4, dtype=np.int64)
        nbytes[(signed >= -(1 << 15)) & (signed < 1 << 15)] = 2
        nbytes[(signed >= -(1 << 7)) & (signed < 1 << 7)] = 1
        total = int(nbytes.sum())
        banks = banks_required(total)
        mode = (
            CompressionMode.UNCOMPRESSED
            if banks >= BANKS_PER_WARP_REGISTER
            else CompressionMode.B4D2
        )
        return CompressionDecision(mode, banks, compressor_used=True)

    def decide_batch(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        lanes = np.ascontiguousarray(matrix, dtype=np.uint32).astype(np.int64)
        signed = np.where(lanes >= 1 << 31, lanes - (1 << 32), lanes)
        nbytes = np.full(signed.shape, 4, dtype=np.int64)
        nbytes[(signed >= -(1 << 15)) & (signed < 1 << 15)] = 2
        nbytes[(signed >= -(1 << 7)) & (signed < 1 << 7)] = 1
        totals = nbytes.sum(axis=1)
        banks = -(-totals // BANK_BYTES)
        np.clip(banks, 1, None, out=banks)
        mode_ids = np.where(
            banks >= BANKS_PER_WARP_REGISTER,
            int(CompressionMode.UNCOMPRESSED),
            int(CompressionMode.B4D2),
        ).astype(np.uint8)
        return mode_ids, banks

    def decide_many(
        self, matrix: np.ndarray, divergent: np.ndarray
    ) -> list[CompressionDecision]:
        mode_ids, banks = self.decide_batch(matrix, divergent)
        modes = MODES_BY_ID
        return [
            CompressionDecision(modes[mid], b, compressor_used=True)
            for mid, b in zip(mode_ids.tolist(), banks.tolist())
        ]


def make_policy(name: str) -> CompressionPolicy:
    """Factory used by the experiment harness.

    Accepted names: ``baseline``, ``warped``, ``warped-buffered``,
    ``static-4-0``, ``static-4-1``, ``static-4-2``, ``per-thread``.
    """
    factories = {
        "baseline": UncompressedPolicy,
        "warped": WarpedCompressionPolicy,
        "warped-buffered": lambda: WarpedCompressionPolicy(
            compress_divergent=True
        ),
        "static-4-0": lambda: StaticBDIPolicy(CompressionMode.B4D0),
        "static-4-1": lambda: StaticBDIPolicy(CompressionMode.B4D1),
        "static-4-2": lambda: StaticBDIPolicy(CompressionMode.B4D2),
        "per-thread": PerThreadNarrowPolicy,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(factories)}"
        ) from None

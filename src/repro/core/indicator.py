"""Compression-range indicator vector.

Each warp register carries a 2-bit indicator recording which of the three
compression choices (or uncompressed) it is stored with.  The paper keeps
this vector in the bank arbiter so it can be read in parallel with bank
arbitration (Section 4); the arbiter then knows exactly which banks hold
the register before issuing any bank access.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import CompressionMode


class CompressionRangeIndicator:
    """2-bit-per-register metadata vector held by the bank arbiter.

    Indexed by warp-register *slot* (the linearised register-file address
    of a warp register).  New slots default to :data:`UNCOMPRESSED`, which
    matches hardware reset state and means an unwritten register costs the
    full eight banks — the conservative baseline behaviour.
    """

    BITS_PER_ENTRY = 2

    def __init__(self, num_slots: int):
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        self.num_slots = num_slots
        # 2-bit values packed into a uint8 vector: keeps per-slot access
        # O(1) while letting whole-vector consistency scans (the
        # verify_level=2 checks in repro.verify) stay vectorised.
        self._modes = np.full(
            num_slots, int(CompressionMode.UNCOMPRESSED), dtype=np.uint8
        )

    def get(self, slot: int) -> CompressionMode:
        """Mode of the register stored at ``slot``."""
        return CompressionMode(int(self._modes[self._check(slot)]))

    def set(self, slot: int, mode: CompressionMode) -> None:
        """Record the storage mode chosen for a register write."""
        self._modes[self._check(slot)] = int(mode)

    def reset(self, slot: int) -> None:
        """Return a slot to its power-on (uncompressed) state."""
        self.set(slot, CompressionMode.UNCOMPRESSED)

    def banks(self, slot: int) -> int:
        """Banks that must be accessed to read the register at ``slot``."""
        return self.get(slot).banks

    def compressed_count(self) -> int:
        """Number of slots currently holding compressed registers."""
        return int(
            (self._modes != int(CompressionMode.UNCOMPRESSED)).sum()
        )

    def modes_array(self) -> np.ndarray:
        """Read-only view of the raw 2-bit mode values (for bulk scans)."""
        view = self._modes.view()
        view.flags.writeable = False
        return view

    @property
    def storage_bits(self) -> int:
        """Total metadata overhead of the vector in bits."""
        return self.num_slots * self.BITS_PER_ENTRY

    def _check(self, slot: int) -> int:
        if not 0 <= slot < self.num_slots:
            raise IndexError(
                f"slot {slot} out of range for {self.num_slots}-entry indicator"
            )
        return slot

    def __len__(self) -> int:
        return self.num_slots

"""Compression-range indicator vector.

Each warp register carries a 2-bit indicator recording which of the three
compression choices (or uncompressed) it is stored with.  The paper keeps
this vector in the bank arbiter so it can be read in parallel with bank
arbitration (Section 4); the arbiter then knows exactly which banks hold
the register before issuing any bank access.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import MODE_BANKS_BY_ID, MODES_BY_ID, CompressionMode

_UNCOMPRESSED_ID = int(CompressionMode.UNCOMPRESSED)

#: Bank counts by raw mode id as plain ints (per-slot probes stay off the
#: numpy scalar path, which costs ~10x a tuple index).
_MODE_BANKS = tuple(int(b) for b in MODE_BANKS_BY_ID)


class CompressionRangeIndicator:
    """2-bit-per-register metadata vector held by the bank arbiter.

    Indexed by warp-register *slot* (the linearised register-file address
    of a warp register).  New slots default to :data:`UNCOMPRESSED`, which
    matches hardware reset state and means an unwritten register costs the
    full eight banks — the conservative baseline behaviour.
    """

    BITS_PER_ENTRY = 2

    def __init__(self, num_slots: int):
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        self.num_slots = num_slots
        # 2-bit values, one byte per slot.  A bytearray keeps per-slot
        # probes at plain-int speed (every issue and commit touches the
        # indicator); bulk scans (the verify_level=2 checks in
        # repro.verify) view the same buffer through numpy.
        self._modes = bytearray(
            bytes([int(CompressionMode.UNCOMPRESSED)]) * num_slots
        )

    def get(self, slot: int) -> CompressionMode:
        """Mode of the register stored at ``slot``."""
        return MODES_BY_ID[self._modes[self._check(slot)]]

    def is_compressed(self, slot: int) -> bool:
        """Whether ``slot`` holds a compressed register (no enum churn)."""
        return self._modes[self._check(slot)] != _UNCOMPRESSED_ID

    def set(self, slot: int, mode: CompressionMode) -> None:
        """Record the storage mode chosen for a register write."""
        self._modes[self._check(slot)] = int(mode)

    def reset(self, slot: int) -> None:
        """Return a slot to its power-on (uncompressed) state."""
        self.set(slot, CompressionMode.UNCOMPRESSED)

    def banks(self, slot: int) -> int:
        """Banks that must be accessed to read the register at ``slot``."""
        return _MODE_BANKS[self._modes[self._check(slot)]]

    def compressed_count(self) -> int:
        """Number of slots currently holding compressed registers."""
        return int((self.modes_array() != _UNCOMPRESSED_ID).sum())

    def modes_array(self) -> np.ndarray:
        """Read-only view of the raw 2-bit mode values (for bulk scans)."""
        view = np.frombuffer(self._modes, dtype=np.uint8)
        view.flags.writeable = False
        return view

    @property
    def storage_bits(self) -> int:
        """Total metadata overhead of the vector in bits."""
        return self.num_slots * self.BITS_PER_ENTRY

    def _check(self, slot: int) -> int:
        if not 0 <= slot < self.num_slots:
            raise IndexError(
                f"slot {slot} out of range for {self.num_slots}-entry indicator"
            )
        return slot

    def __len__(self) -> int:
        return self.num_slots

"""Content-keyed codec memo cache (the simulator's own warped-compression).

The paper's central observation — warp registers exhibit massive
cross-warp value similarity — cuts both ways: the very same 128-byte
register images that compress well also *recur* constantly across warps,
CTAs and kernels, so the simulator keeps re-running an encoding search
whose answer it has already computed.  This module memoizes the full
outcome of the warped-compression encoding search, keyed by the raw
little-endian bytes of the 32-lane register image::

    key   = lanes.tobytes()              # 128 bytes for a 32-wide warp
    value = (CompressionMode, BDIBlock | None)

Because :func:`repro.core.codec.choose_mode` is a pure function of those
bytes, a memo hit is *bit-identical* to a recomputation by construction;
the property is additionally enforced by hypothesis tests and by the
``repro.verify`` differential oracle, whose byte-level BDI cross-check
runs downstream of the cache.

The cache is process-global (register content similarity is cross-SM and
cross-kernel), bounded LRU, and exports hit/miss/eviction counters that
the SM registers into its :mod:`repro.obs` metric registry.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager

#: Default entry bound.  One entry is a 128-byte key plus a small tuple;
#: 64Ki entries keep the cache under ~30 MB while comfortably covering
#: the working set of every registry kernel (measured hit rates > 90%).
DEFAULT_CAPACITY = 65536


class CodecMemoCache:
    """Bounded LRU map from raw register-image bytes to codec outcomes."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = True
        self._entries: OrderedDict[bytes, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes):
        """The memoized ``(mode, block)`` for ``key``, or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, value: tuple) -> None:
        """Insert an outcome, evicting the least-recently-used entry."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_counters`)."""
        self._entries.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def resize(self, capacity: int) -> None:
        """Change the entry bound, evicting LRU entries if shrinking."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def attach_metrics(self, registry) -> None:
        """Register hit/miss counters into a :mod:`repro.obs` registry."""
        registry.probe("codec.memo_hits", lambda: self.hits, kind="delta")
        registry.probe("codec.memo_misses", lambda: self.misses, kind="delta")
        registry.probe("codec.memo_entries", self.__len__)


#: The process-wide cache used by :mod:`repro.core.codec`.
MEMO_CACHE = CodecMemoCache()

#: Sibling cache for per-write characterisation profiles (similarity bin
#: and Figure 5 best-BDI choice), keyed by the same raw lane bytes.  The
#: entries are pure functions of the register image too, so the same
#: bit-identity argument applies; it is toggled in lockstep with
#: :data:`MEMO_CACHE` so fast/slow equivalence runs disable both.
PROFILE_CACHE = CodecMemoCache()


def set_memo_enabled(enabled: bool) -> None:
    """Globally enable/disable memoized encoding (tests, equivalence runs)."""
    MEMO_CACHE.enabled = enabled
    PROFILE_CACHE.enabled = enabled


@contextmanager
def memo_disabled():
    """Context manager forcing direct (unmemoized) encoding."""
    previous = (MEMO_CACHE.enabled, PROFILE_CACHE.enabled)
    MEMO_CACHE.enabled = False
    PROFILE_CACHE.enabled = False
    try:
        yield
    finally:
        MEMO_CACHE.enabled, PROFILE_CACHE.enabled = previous


__all__ = [
    "DEFAULT_CAPACITY",
    "CodecMemoCache",
    "MEMO_CACHE",
    "PROFILE_CACHE",
    "memo_disabled",
    "set_memo_enabled",
]

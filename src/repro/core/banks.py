"""Register-bank geometry arithmetic.

The paper's baseline register file (Section 2.1) is built from 16-byte-wide
SRAM banks.  A 128-byte warp register (32 threads x 4 bytes) spans eight
consecutive banks.  Compressed registers occupy only the lowest
``ceil(size / 16)`` banks of their eight-bank cluster, which is what makes
bank-level power gating possible (Section 5.3, Figure 10).
"""

from __future__ import annotations

#: Width of one register bank entry in bytes (128 bits, paper Table 2).
BANK_BYTES = 16

#: Size of one uncompressed warp register in bytes (32 threads x 4 B).
WARP_REGISTER_BYTES = 128

#: Number of banks an uncompressed warp register spans.
BANKS_PER_WARP_REGISTER = WARP_REGISTER_BYTES // BANK_BYTES


def banks_required(nbytes: int, bank_bytes: int = BANK_BYTES) -> int:
    """Number of register banks needed to store ``nbytes`` of data.

    Storage is allocated in whole banks: any compressed representation that
    exceeds a 16-byte boundary spills into an additional bank (paper
    Section 4, Table 1).

    >>> banks_required(4)
    1
    >>> banks_required(35)
    3
    >>> banks_required(66)
    5
    >>> banks_required(128)
    8
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if bank_bytes <= 0:
        raise ValueError(f"bank_bytes must be positive, got {bank_bytes}")
    if nbytes == 0:
        return 0
    return -(-nbytes // bank_bytes)


def bank_bytes_used(nbytes: int, bank_bytes: int = BANK_BYTES) -> int:
    """Total bytes of bank storage consumed (whole-bank granularity)."""
    return banks_required(nbytes, bank_bytes) * bank_bytes


def compression_ratio_in_banks(
    compressed_bytes: int,
    original_bytes: int = WARP_REGISTER_BYTES,
    bank_bytes: int = BANK_BYTES,
) -> float:
    """Effective compression ratio measured in bank granularity.

    The register file can only save energy in whole-bank units, so the
    paper reports compression ratio as original banks / used banks
    (e.g. ``<4,1>`` stores 35 bytes in 3 banks: ratio 8/3).
    """
    used = banks_required(compressed_bytes, bank_bytes)
    total = banks_required(original_bytes, bank_bytes)
    if used == 0:
        raise ValueError("compressed size of zero bytes has no bank ratio")
    return total / used

"""Fast warp-register codec for the three warped-compression choices.

The paper restricts runtime compression to the fixed parameter set
``<4,0>``, ``<4,1>``, ``<4,2>`` (Section 4, Figure 5): the 128-byte warp
register is split into 32 four-byte chunks — one per thread register — the
first active chunk is the base, and every other chunk must be expressible
as a 0/1/2-byte signed delta.  A register that fits none of the three is
stored uncompressed.

This module is the hot path of the simulator, so mode selection is
vectorised over ``numpy`` ``uint32`` lanes **and memoized**: register
images recur constantly across warps (the paper's own observation), so
the full encoding outcome is cached in the content-keyed
:data:`repro.core.memo.MEMO_CACHE` keyed by the raw lane bytes.  The
bit-exact reference implementation (arbitrary parameters, byte-level
layout) lives in :mod:`repro.core.bdi` and the two are cross-checked by
property tests and the ``repro.verify`` differential oracle.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.core.banks import (
    BANK_BYTES,
    BANKS_PER_WARP_REGISTER,
    WARP_REGISTER_BYTES,
    banks_required,
)
from repro.core.bdi import BDIBlock, Encoding
from repro.core.memo import MEMO_CACHE


class CompressionMode(IntEnum):
    """The 2-bit compression-range indicator values (paper Section 4).

    The numeric values are the actual indicator encodings stored in the
    bank arbiter: two bits distinguish the three compressed sizes plus the
    uncompressed state.
    """

    B4D0 = 0  #: ``<4,0>`` — all 32 thread registers identical (1 bank).
    B4D1 = 1  #: ``<4,1>`` — deltas fit one signed byte (3 banks).
    B4D2 = 2  #: ``<4,2>`` — deltas fit two signed bytes (5 banks).
    UNCOMPRESSED = 3  #: stored raw across all 8 banks.

    @property
    def compressed_bytes(self) -> int:
        """Compressed payload size in bytes (Table 1, base-4 rows)."""
        return _MODE_BYTES[self]

    @property
    def banks(self) -> int:
        """Register banks occupied by this representation."""
        return _MODE_BANKS[self]

    @property
    def encoding(self) -> Encoding | None:
        """The equivalent generic :class:`~repro.core.bdi.Encoding`."""
        return _MODE_ENCODING[self]

    @property
    def is_compressed(self) -> bool:
        return self is not CompressionMode.UNCOMPRESSED


_MODE_BYTES = {
    CompressionMode.B4D0: 4,
    CompressionMode.B4D1: 35,
    CompressionMode.B4D2: 66,
    CompressionMode.UNCOMPRESSED: WARP_REGISTER_BYTES,
}
_MODE_BANKS = {
    mode: banks_required(nbytes) for mode, nbytes in _MODE_BYTES.items()
}
_MODE_ENCODING = {
    CompressionMode.B4D0: Encoding(4, 0),
    CompressionMode.B4D1: Encoding(4, 1),
    CompressionMode.B4D2: Encoding(4, 2),
    CompressionMode.UNCOMPRESSED: None,
}

#: Modes ordered from fewest to most banks, i.e. preference order.
COMPRESSED_MODES = (
    CompressionMode.B4D0,
    CompressionMode.B4D1,
    CompressionMode.B4D2,
)

#: Indicator-id lookup tables for batch paths: raw 2-bit id -> enum /
#: bank count without constructing an enum instance per register.
MODES_BY_ID = tuple(CompressionMode)
MODE_BANKS_BY_ID = np.array(
    [_MODE_BANKS[mode] for mode in MODES_BY_ID], dtype=np.int64
)
MODE_BANKS_BY_ID.setflags(write=False)


def _as_lanes(values: np.ndarray) -> np.ndarray:
    lanes = np.asarray(values, dtype=np.uint32)
    if lanes.ndim != 1:
        raise ValueError(f"warp register must be 1-D, got shape {lanes.shape}")
    return lanes


def _encode_lanes(lanes: np.ndarray) -> tuple[CompressionMode, BDIBlock | None]:
    """One full (unmemoized) encoding search over validated lanes."""
    deltas = (lanes - lanes[0]).astype(np.int32)
    high, low = int(deltas.max()), int(deltas.min())
    if high == 0 and low == 0:
        mode = CompressionMode.B4D0
    elif high <= 127 and low >= -128:
        mode = CompressionMode.B4D1
    elif high <= 32767 and low >= -32768:
        mode = CompressionMode.B4D2
    else:
        return CompressionMode.UNCOMPRESSED, None
    block = BDIBlock(
        encoding=_MODE_ENCODING[mode],
        input_size=lanes.size * 4,
        base=int(lanes[0]),
        deltas=tuple(deltas[1:].tolist()),
    )
    return mode, block


def _memoized_encode(lanes: np.ndarray) -> tuple[CompressionMode, BDIBlock | None]:
    """Memoized encoding search (content-keyed, bounded LRU)."""
    cache = MEMO_CACHE
    if not cache.enabled:
        return _encode_lanes(lanes)
    key = lanes.tobytes()
    entry = cache.get(key)
    if entry is None:
        entry = _encode_lanes(lanes)
        cache.put(key, entry)
    return entry


def choose_mode(values: np.ndarray) -> CompressionMode:
    """Pick the cheapest mode that can represent a warp register.

    ``values`` is the array of 32 thread-register values (``uint32``).
    Deltas are wrap-around differences to lane 0 reinterpreted as signed
    32-bit values, matching the hardware subtractor in Figure 7.
    Memoized by register content: repeated images (the common case, per
    the paper's similarity observation) skip the search entirely.
    """
    return _memoized_encode(_as_lanes(values))[0]


def choose_mode_ids(matrix: np.ndarray) -> np.ndarray:
    """Batch :func:`choose_mode` over a ``(n, warp_size)`` lane matrix.

    Returns the raw 2-bit indicator ids as ``uint8`` — one per row —
    computed with whole-matrix arithmetic instead of per-register
    Python.  Same delta thresholds as :func:`_encode_lanes`; narrower
    modes overwrite wider ones so each row lands on the cheapest fit.
    """
    m = np.ascontiguousarray(matrix, dtype=np.uint32)
    if m.ndim != 2:
        raise ValueError(f"lane matrix must be 2-D, got shape {m.shape}")
    ids = np.full(m.shape[0], int(CompressionMode.UNCOMPRESSED), dtype=np.uint8)
    if m.shape[0] == 0:
        return ids
    deltas = (m - m[:, :1]).astype(np.int32)
    high = deltas.max(axis=1)
    low = deltas.min(axis=1)
    ids[(high <= 32767) & (low >= -32768)] = int(CompressionMode.B4D2)
    ids[(high <= 127) & (low >= -128)] = int(CompressionMode.B4D1)
    ids[(high == 0) & (low == 0)] = int(CompressionMode.B4D0)
    return ids


def encode_register(values: np.ndarray) -> tuple[CompressionMode, BDIBlock | None]:
    """Compress a warp register; returns the mode and block (``None`` raw).

    Served from the content-keyed memo cache when the identical register
    image has been encoded before (see :mod:`repro.core.memo`).
    """
    return _memoized_encode(_as_lanes(values))


def decode_register(block: BDIBlock) -> np.ndarray:
    """Reconstruct the 32 ``uint32`` thread registers from a block."""
    if block.encoding.base_size != 4:
        raise ValueError(f"not a warp-register block: {block.encoding}")
    base = np.uint32(block.base)
    deltas = np.asarray((0,) + block.deltas, dtype=np.int64)
    return ((int(base) + deltas) % (1 << 32)).astype(np.uint32)


class WarpRegisterCodec:
    """Stateless codec facade used by the register file model.

    Wraps mode selection and (de)compression while counting activations so
    the power model can charge compressor/decompressor unit energy.
    """

    def __init__(self, modes: tuple[CompressionMode, ...] = COMPRESSED_MODES):
        for mode in modes:
            if not mode.is_compressed:
                raise ValueError("codec mode list must not contain UNCOMPRESSED")
        self.modes = tuple(sorted(modes))
        self.compressions = 0
        self.decompressions = 0
        # Raw-id remap table for the batch path: achievable indicator id
        # -> id actually stored under this codec's allowed-mode set
        # (first allowed mode at least as wide, else uncompressed).
        table = np.full(
            len(MODES_BY_ID), int(CompressionMode.UNCOMPRESSED), dtype=np.uint8
        )
        for mode in COMPRESSED_MODES:
            for allowed in self.modes:
                if allowed >= mode:
                    table[int(mode)] = int(allowed)
                    break
        table.setflags(write=False)
        self._mode_map = table

    def compress(self, values: np.ndarray) -> CompressionMode:
        """Pick a storage mode restricted to this codec's allowed modes."""
        self.compressions += 1
        mode = choose_mode(values)
        if mode is CompressionMode.UNCOMPRESSED:
            return mode
        for allowed in self.modes:
            if allowed >= mode:
                return allowed
        return CompressionMode.UNCOMPRESSED

    def map_mode_ids(self, ids: np.ndarray) -> np.ndarray:
        """Batch mode restriction: achievable ids -> stored ids.

        The array analogue of the allowed-mode scan in :meth:`compress`;
        callers account for compressor activations themselves.
        """
        return self._mode_map[ids]

    def decompress(self) -> None:
        """Record a decompression activation (values live uncompressed)."""
        self.decompressions += 1

    def reset_counters(self) -> None:
        self.compressions = 0
        self.decompressions = 0


def bank_span(mode: CompressionMode) -> range:
    """Bank offsets (within the 8-bank cluster) a register in ``mode`` uses.

    Compressed data is stored starting at the lowest bank index of the
    cluster (Section 6.2), so higher-index banks are the ones freed up and
    power-gated — the effect Figure 10 plots.
    """
    return range(mode.banks)


def full_bank_span() -> range:
    """Bank offsets of an uncompressed warp register."""
    return range(BANKS_PER_WARP_REGISTER)


def compression_ratio(mode: CompressionMode) -> float:
    """Bank-granularity compression ratio achieved by ``mode``."""
    return BANKS_PER_WARP_REGISTER / mode.banks


__all__ = [
    "BANK_BYTES",
    "COMPRESSED_MODES",
    "MODE_BANKS_BY_ID",
    "MODES_BY_ID",
    "CompressionMode",
    "WarpRegisterCodec",
    "bank_span",
    "choose_mode",
    "choose_mode_ids",
    "compression_ratio",
    "decode_register",
    "encode_register",
    "full_bank_span",
]

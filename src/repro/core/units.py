"""Compressor / decompressor unit pool model.

The paper provisions two compressor units and four decompressor units per
SM so that two warp instructions per cycle (one per scheduler, each with up
to two source operands and one destination) can be processed (Section 5.1).
Each unit is a pipelined collection of 32 subtractors/adders: it can accept
a new register every ``initiation_interval`` cycles and produces its result
``latency`` cycles after acceptance.

The pool tracks activation counts for the energy model (Table 3 charges
23 pJ per compression and 21 pJ per decompression activation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class UnitPool:
    """A pool of identical pipelined function units.

    Parameters
    ----------
    count:
        Number of physical units in the pool.
    latency:
        Cycles from acceptance to result availability.
    initiation_interval:
        Cycles a unit is busy to new work after accepting a register.
        ``1`` models a fully pipelined unit (the paper's default); setting
        it equal to ``latency`` models an unpipelined unit.
    """

    count: int
    latency: int
    initiation_interval: int = 1
    activations: int = field(default=0, init=False)
    _busy_until: list[int] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"unit count must be positive, got {self.count}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")
        if self.initiation_interval < 1:
            raise ValueError(
                f"initiation interval must be >= 1, got {self.initiation_interval}"
            )
        self._busy_until = [0] * self.count

    def try_start(self, cycle: int) -> int | None:
        """Accept one register into a free unit at ``cycle``.

        Returns the cycle at which the result is ready, or ``None`` when
        every unit's issue slot is occupied this cycle (structural hazard —
        the requester must retry next cycle).
        """
        for i, busy_until in enumerate(self._busy_until):
            if busy_until <= cycle:
                self._busy_until[i] = cycle + self.initiation_interval
                self.activations += 1
                return cycle + self.latency
        return None

    def next_free_cycle(self) -> int:
        """Earliest cycle any unit can accept new work — side-effect-free.

        The simulator fast path uses this to compute how far it may skip
        while an op waits out a structural hazard on the pool: after a
        failed :meth:`try_start`, every issue slot is reserved past the
        current cycle, and the earliest reservation expiry is the first
        cycle a retry could succeed.
        """
        return min(self._busy_until)

    def free_at(self, cycle: int) -> int:
        """Number of units with a free issue slot at ``cycle``."""
        return sum(1 for busy in self._busy_until if busy <= cycle)

    def reset(self) -> None:
        """Clear all reservations and counters."""
        self._busy_until = [0] * self.count
        self.activations = 0

"""Warped-compression core: BDI compression, codecs, units, and policies.

This package implements the paper's primary contribution — the
base-delta-immediate (BDI) compression machinery specialised for GPU warp
registers — independent of any particular simulator.  The GPU timing model
in :mod:`repro.gpu` consumes these building blocks.

Public surface:

* :mod:`repro.core.bdi` — the generic BDI algorithm over byte strings, for
  any ``<base, delta>`` parameter pair (paper Table 1 / Section 4).
* :mod:`repro.core.codec` — the fast warp-register codec restricted to the
  three choices the paper selects (``<4,0>``, ``<4,1>``, ``<4,2>``).
* :mod:`repro.core.banks` — register-bank geometry arithmetic.
* :mod:`repro.core.indicator` — the 2-bit compression-range indicator
  vector stored alongside the bank arbiter.
* :mod:`repro.core.memo` — the content-keyed codec memo cache that lets
  repeated register images (the paper's similarity observation) skip the
  encoding search.
* :mod:`repro.core.units` — pipelined compressor/decompressor unit models.
* :mod:`repro.core.policy` — storage policies (dynamic warped-compression,
  static single-parameter, per-thread narrow width, uncompressed baseline).
"""

from repro.core.banks import BANK_BYTES, WARP_REGISTER_BYTES, banks_required
from repro.core.bdi import (
    ALL_ENCODINGS,
    TABLE1_ENCODINGS,
    BDIBlock,
    Encoding,
    best_encoding,
    can_encode,
    compressed_size,
    decode,
    encode,
)
from repro.core.codec import (
    CompressionMode,
    WarpRegisterCodec,
    choose_mode,
    decode_register,
    encode_register,
)
from repro.core.indicator import CompressionRangeIndicator
from repro.core.memo import (
    MEMO_CACHE,
    CodecMemoCache,
    memo_disabled,
    set_memo_enabled,
)
from repro.core.policy import (
    CompressionDecision,
    CompressionPolicy,
    PerThreadNarrowPolicy,
    StaticBDIPolicy,
    UncompressedPolicy,
    WarpedCompressionPolicy,
    make_policy,
)
from repro.core.units import UnitPool

__all__ = [
    "ALL_ENCODINGS",
    "BANK_BYTES",
    "BDIBlock",
    "CompressionDecision",
    "CompressionMode",
    "CompressionPolicy",
    "CompressionRangeIndicator",
    "CodecMemoCache",
    "Encoding",
    "MEMO_CACHE",
    "PerThreadNarrowPolicy",
    "StaticBDIPolicy",
    "TABLE1_ENCODINGS",
    "UncompressedPolicy",
    "UnitPool",
    "WARP_REGISTER_BYTES",
    "WarpRegisterCodec",
    "WarpedCompressionPolicy",
    "banks_required",
    "best_encoding",
    "can_encode",
    "choose_mode",
    "compressed_size",
    "decode",
    "decode_register",
    "encode",
    "encode_register",
    "make_policy",
    "memo_disabled",
    "set_memo_enabled",
]

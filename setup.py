"""Legacy installation shim.

``pip install -e .`` uses pyproject.toml; this file exists for offline
environments without the ``wheel`` package, where ``python setup.py
develop`` is the only editable-install path (and needs the console
script declared here, since legacy setuptools ignores
``[project.scripts]``).
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "warped-compression = repro.harness.runner:main",
        ]
    }
)
